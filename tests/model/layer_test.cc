#include "model/layer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/config.h"
#include "util/rng.h"

namespace punica {
namespace {

LlamaConfig Cfg() { return TinyLlama(); }

KvCacheConfig KvCfg(const LlamaConfig& c, std::int32_t pages = 128) {
  return {.num_layers = c.num_layers,
          .num_kv_heads = c.num_kv_heads,
          .head_dim = c.head_dim(),
          .page_size = 4,
          .num_pages = pages};
}

TEST(ModelBatchTest, BuildMetadata) {
  std::vector<BatchEntry> entries = {
      {.seq = 0, .lora = 7, .num_tokens = 3, .pos_offset = 0,
       .is_prefill = true},
      {.seq = 1, .lora = 7, .num_tokens = 1, .pos_offset = 4,
       .is_prefill = false},
      {.seq = 2, .lora = 9, .num_tokens = 1, .pos_offset = 2,
       .is_prefill = false},
  };
  ModelBatch b = ModelBatch::Build(entries);
  EXPECT_EQ(b.total_tokens(), 5);
  EXPECT_EQ(b.batch_len.num_prefill(), 1);
  EXPECT_EQ(b.batch_len.num_decode, 2);
  // Prefill tail and decode head share LoRA 7 → one segment (paper §6).
  EXPECT_EQ(b.segments.num_segments(), 2);
  EXPECT_EQ(b.segments.offsets, (std::vector<std::int32_t>{0, 4, 5}));
  EXPECT_EQ(b.decode_seqs, (std::vector<SeqId>{1, 2}));
  EXPECT_EQ(b.row_pos, (std::vector<std::int64_t>{0, 1, 2, 4, 2}));
  EXPECT_EQ(b.row_seq, (std::vector<SeqId>{0, 0, 0, 1, 2}));
}

TEST(ModelBatchDeathTest, PrefillAfterDecodeAborts) {
  std::vector<BatchEntry> entries = {
      {.seq = 0, .lora = 1, .num_tokens = 1, .pos_offset = 0,
       .is_prefill = false},
      {.seq = 1, .lora = 1, .num_tokens = 2, .pos_offset = 0,
       .is_prefill = true},
  };
  EXPECT_DEATH(ModelBatch::Build(entries), "prefills must precede");
}

TEST(ModelBatchDeathTest, MultiTokenDecodeAborts) {
  std::vector<BatchEntry> entries = {
      {.seq = 0, .lora = 1, .num_tokens = 2, .pos_offset = 0,
       .is_prefill = false},
  };
  EXPECT_DEATH(ModelBatch::Build(entries), "single-token");
}

TEST(LayerWeightsTest, ShapesFollowConfig) {
  LlamaConfig c = Cfg();
  LayerWeights w = LayerWeights::Random(c, 1);
  EXPECT_EQ(w.proj[static_cast<int>(Proj::kQ)].dim(1), c.hidden_size);
  EXPECT_EQ(w.proj[static_cast<int>(Proj::kK)].dim(1), c.kv_dim());
  EXPECT_EQ(w.proj[static_cast<int>(Proj::kGate)].dim(1), c.ffn_hidden);
  EXPECT_EQ(w.proj[static_cast<int>(Proj::kDown)].dim(0), c.ffn_hidden);
}

TEST(LoraModelWeightsTest, ByteSizeMatchesConfigFormula) {
  LlamaConfig c = Cfg();
  LoraModelWeights w = LoraModelWeights::Random(c, 8, 3);
  EXPECT_EQ(w.byte_size(),
            static_cast<std::size_t>(c.lora_total_bytes(8)));
}

// Runs one layer over a fresh batch and returns the activations.
std::vector<float> RunLayer(const LlamaConfig& c, const LayerWeights& w,
                            const LoraModelWeights* lora,
                            std::span<const float> x_in, int tokens,
                            SeqId* seq_out = nullptr) {
  PagedKvCache kv(KvCfg(c));  // fresh cache per call keeps runs independent
  SeqId seq = kv.CreateSequence();
  EXPECT_TRUE(kv.Extend(seq, tokens));
  if (seq_out != nullptr) *seq_out = seq;

  std::vector<BatchEntry> entries = {{.seq = seq,
                                      .lora = lora != nullptr ? 0 : -1,
                                      .num_tokens = tokens,
                                      .pos_offset = 0,
                                      .is_prefill = true}};
  ModelBatch batch = ModelBatch::Build(entries);
  std::vector<const LoraModelWeights*> seg_lora = {lora};
  std::vector<float> x(x_in.begin(), x_in.end());
  LayerWorkspace ws;
  ws.Resize(c, tokens, lora != nullptr ? lora->rank : 1);
  LayerForward(c, w, seg_lora, batch, 0, kv, x, ws);
  return x;
}

TEST(LayerForwardTest, DeterministicAndFinite) {
  LlamaConfig c = Cfg();
  LayerWeights w = LayerWeights::Random(c, 11);
  Pcg32 rng(4);
  const int tokens = 5;
  auto x = RandomGaussianVector(
      static_cast<std::size_t>(tokens) * c.hidden_size, 1.0f, rng);
  auto y1 = RunLayer(c, w, nullptr, x, tokens);
  auto y2 = RunLayer(c, w, nullptr, x, tokens);
  EXPECT_EQ(y1, y2);
  for (float v : y1) EXPECT_TRUE(std::isfinite(v));
  // Residual structure: output differs from input.
  EXPECT_NE(y1, x);
}

TEST(LayerForwardTest, LoraChangesOutput) {
  LlamaConfig c = Cfg();
  LayerWeights w = LayerWeights::Random(c, 12);
  LoraModelWeights lora = LoraModelWeights::Random(c, 8, 55);
  Pcg32 rng(5);
  const int tokens = 3;
  auto x = RandomGaussianVector(
      static_cast<std::size_t>(tokens) * c.hidden_size, 1.0f, rng);
  auto y_base = RunLayer(c, w, nullptr, x, tokens);
  auto y_lora = RunLayer(c, w, &lora, x, tokens);
  int diffs = 0;
  for (std::size_t i = 0; i < y_base.size(); ++i) {
    if (y_base[i] != y_lora[i]) ++diffs;
  }
  EXPECT_GT(diffs, static_cast<int>(y_base.size() / 2));
}

TEST(LayerForwardTest, CausalityWithinPrefill) {
  // Changing a later token's input must not change earlier tokens' outputs.
  LlamaConfig c = Cfg();
  LayerWeights w = LayerWeights::Random(c, 13);
  Pcg32 rng(6);
  const int tokens = 4;
  auto h = static_cast<std::size_t>(c.hidden_size);
  auto x = RandomGaussianVector(tokens * h, 1.0f, rng);
  auto y1 = RunLayer(c, w, nullptr, x, tokens);
  auto x2 = x;
  for (std::size_t i = 0; i < h; ++i) x2[3 * h + i] += 1.0f;  // perturb t3
  auto y2 = RunLayer(c, w, nullptr, x2, tokens);
  for (std::size_t i = 0; i < 3 * h; ++i) {
    EXPECT_FLOAT_EQ(y1[i], y2[i]) << "leak into token " << i / h;
  }
  bool t3_changed = false;
  for (std::size_t i = 3 * h; i < 4 * h; ++i) {
    t3_changed = t3_changed || y1[i] != y2[i];
  }
  EXPECT_TRUE(t3_changed);
}

TEST(LayerForwardTest, MixedBatchMatchesSeparateRuns) {
  // A prefill + decode mixed invocation must produce the same outputs as
  // running each request alone (dense projections batch rows independently;
  // attention reads only the request's own cache).
  LlamaConfig c = Cfg();
  LayerWeights w = LayerWeights::Random(c, 14);
  Pcg32 rng(7);
  auto h = static_cast<std::size_t>(c.hidden_size);

  PagedKvCache kv(KvCfg(c));
  // Request A: 3-token prefill. Request B: decode at position 2 (cache
  // already holds 2 tokens worth of K/V from a previous run).
  SeqId sa = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(sa, 3));
  SeqId sb = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(sb, 3));
  Pcg32 kv_rng(70);
  for (int l = 0; l < c.num_layers; ++l) {
    for (std::int64_t p = 0; p < 2; ++p) {
      auto ke = kv.Entry(sb, l, p, KvSlot::kKey);
      auto ve = kv.Entry(sb, l, p, KvSlot::kValue);
      for (std::size_t d = 0; d < ke.size(); ++d) {
        ke[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
        ve[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
      }
    }
  }

  auto xa = RandomGaussianVector(3 * h, 1.0f, rng);
  auto xb = RandomGaussianVector(h, 1.0f, rng);

  // Mixed run.
  std::vector<BatchEntry> entries = {
      {.seq = sa, .lora = -1, .num_tokens = 3, .pos_offset = 0,
       .is_prefill = true},
      {.seq = sb, .lora = -1, .num_tokens = 1, .pos_offset = 2,
       .is_prefill = false}};
  ModelBatch batch = ModelBatch::Build(entries);
  std::vector<const LoraModelWeights*> seg_lora(
      static_cast<std::size_t>(batch.segments.num_segments()), nullptr);
  std::vector<float> x_mixed;
  x_mixed.insert(x_mixed.end(), xa.begin(), xa.end());
  x_mixed.insert(x_mixed.end(), xb.begin(), xb.end());
  LayerWorkspace ws;
  ws.Resize(c, 4, 1);
  LayerForward(c, w, seg_lora, batch, 0, kv, x_mixed, ws);

  // Separate runs on fresh caches with identical initial KV state.
  PagedKvCache kv2(KvCfg(c));
  SeqId sa2 = kv2.CreateSequence();
  ASSERT_TRUE(kv2.Extend(sa2, 3));
  SeqId sb2 = kv2.CreateSequence();
  ASSERT_TRUE(kv2.Extend(sb2, 3));
  Pcg32 kv_rng2(70);
  for (int l = 0; l < c.num_layers; ++l) {
    for (std::int64_t p = 0; p < 2; ++p) {
      auto ke = kv2.Entry(sb2, l, p, KvSlot::kKey);
      auto ve = kv2.Entry(sb2, l, p, KvSlot::kValue);
      for (std::size_t d = 0; d < ke.size(); ++d) {
        ke[d] = f16(static_cast<float>(kv_rng2.NextGaussian()) * 0.3f);
        ve[d] = f16(static_cast<float>(kv_rng2.NextGaussian()) * 0.3f);
      }
    }
  }
  std::vector<BatchEntry> ea = {{.seq = sa2, .lora = -1, .num_tokens = 3,
                                 .pos_offset = 0, .is_prefill = true}};
  ModelBatch ba = ModelBatch::Build(ea);
  std::vector<const LoraModelWeights*> la(1, nullptr);
  auto x_a = xa;
  LayerWorkspace wsa;
  wsa.Resize(c, 3, 1);
  LayerForward(c, w, la, ba, 0, kv2, x_a, wsa);

  std::vector<BatchEntry> eb = {{.seq = sb2, .lora = -1, .num_tokens = 1,
                                 .pos_offset = 2, .is_prefill = false}};
  ModelBatch bb = ModelBatch::Build(eb);
  auto x_b = xb;
  LayerWorkspace wsb;
  wsb.Resize(c, 1, 1);
  LayerForward(c, w, la, bb, 0, kv2, x_b, wsb);

  for (std::size_t i = 0; i < 3 * h; ++i) {
    EXPECT_NEAR(x_mixed[i], x_a[i], 1e-5f) << "prefill elt " << i;
  }
  for (std::size_t i = 0; i < h; ++i) {
    EXPECT_NEAR(x_mixed[3 * h + i], x_b[i], 1e-5f) << "decode elt " << i;
  }
}

}  // namespace
}  // namespace punica
