#include "model/rope.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

TEST(RopeTest, PositionZeroIsIdentity) {
  Pcg32 rng(1);
  auto x = RandomGaussianVector(4 * 8, 1.0f, rng);
  auto orig = x;
  ApplyRope(x, 4, 8, 0, 10000.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(x[i], orig[i]);
  }
}

TEST(RopeTest, PreservesNorm) {
  Pcg32 rng(2);
  for (std::int64_t pos : {1, 17, 511, 100000}) {
    auto x = RandomGaussianVector(2 * 16, 1.0f, rng);
    double norm_before = 0.0;
    for (float v : x) norm_before += static_cast<double>(v) * v;
    ApplyRope(x, 2, 16, pos, 10000.0f);
    double norm_after = 0.0;
    for (float v : x) norm_after += static_cast<double>(v) * v;
    EXPECT_NEAR(norm_after, norm_before, norm_before * 1e-5);
  }
}

TEST(RopeTest, FirstPairRotatesByPosRadians) {
  // Frequency of pair 0 is theta^0 = 1, so the rotation angle equals pos.
  std::vector<float> x = {1.0f, 0.0f};
  ApplyRope(x, 1, 2, 1, 10000.0f);
  EXPECT_NEAR(x[0], std::cos(1.0f), 1e-6f);
  EXPECT_NEAR(x[1], std::sin(1.0f), 1e-6f);
}

TEST(RopeTest, HigherPairsRotateSlower) {
  std::vector<float> x = {1.0f, 0.0f, 1.0f, 0.0f};  // 1 head, dim 4: 2 pairs
  ApplyRope(x, 1, 4, 100, 10000.0f);
  // Pair 0 angle = 100; pair 1 angle = 100·theta^(-1/2) = 1.
  EXPECT_NEAR(x[2], std::cos(1.0f), 1e-4f);
  EXPECT_NEAR(x[3], std::sin(1.0f), 1e-4f);
}

TEST(RopeTest, RelativePositionProperty) {
  // RoPE's defining property: <rope(q,m), rope(k,n)> depends only on m−n.
  Pcg32 rng(3);
  const int d = 32;
  auto q = RandomGaussianVector(d, 1.0f, rng);
  auto k = RandomGaussianVector(d, 1.0f, rng);
  auto dot = [&](const std::vector<float>& a, const std::vector<float>& b) {
    double acc = 0.0;
    for (int i = 0; i < d; ++i) {
      acc += static_cast<double>(a[static_cast<std::size_t>(i)]) *
             b[static_cast<std::size_t>(i)];
    }
    return acc;
  };
  auto at = [&](const std::vector<float>& v, std::int64_t pos) {
    auto copy = v;
    ApplyRope(copy, 1, d, pos, 10000.0f);
    return copy;
  };
  double d1 = dot(at(q, 7), at(k, 3));      // offset 4
  double d2 = dot(at(q, 1007), at(k, 1003));  // offset 4
  EXPECT_NEAR(d1, d2, 1e-3);
  double d3 = dot(at(q, 7), at(k, 6));  // different offset → different dot
  EXPECT_GT(std::abs(d1 - d3), 1e-4);
}

TEST(RopeTest, HeadsAreIndependent) {
  Pcg32 rng(4);
  auto x = RandomGaussianVector(2 * 8, 1.0f, rng);
  auto head0 = std::vector<float>(x.begin(), x.begin() + 8);
  ApplyRope(x, 2, 8, 42, 10000.0f);
  ApplyRope(head0, 1, 8, 42, 10000.0f);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(x[static_cast<std::size_t>(i)],
                    head0[static_cast<std::size_t>(i)]);
  }
}

TEST(RopeDeathTest, OddHeadDimAborts) {
  std::vector<float> x(3);
  EXPECT_DEATH(ApplyRope(x, 1, 3, 0, 10000.0f), "PUNICA_CHECK");
}

}  // namespace
}  // namespace punica
