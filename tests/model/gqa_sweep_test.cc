// Parameterised sweep over grouped-query-attention geometries: the full
// numeric stack (layer, model, engine) must behave identically in structure
// for MHA (H == N), GQA (H > N > 1) and MQA (N == 1), and cross-LoRA
// batching must stay output-preserving in every geometry.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "model/llama.h"
#include "runtime/engine.h"

namespace punica {
namespace {

using GqaParam = std::tuple<int, int>;  // (num_heads, num_kv_heads)

LlamaConfig ConfigFor(int heads, int kv_heads) {
  LlamaConfig c;
  c.name = "gqa-sweep";
  c.hidden_size = heads * 16;  // head_dim 16
  c.num_layers = 2;
  c.num_heads = heads;
  c.num_kv_heads = kv_heads;
  c.ffn_hidden = c.hidden_size * 2;
  c.vocab_size = 128;
  return c;
}

class GqaSweep : public ::testing::TestWithParam<GqaParam> {
 protected:
  GqaSweep() : config_(ConfigFor(std::get<0>(GetParam()),
                                 std::get<1>(GetParam()))),
               model_(config_, 4242) {
    model_.AddLora(0, 4, 1);
    model_.AddLora(1, 4, 2);
  }

  std::vector<std::int32_t> Generate(LoraId lora,
                                     std::vector<std::int32_t> prompt,
                                     int tokens, int max_batch = 1) {
    EngineConfig cfg;
    cfg.max_batch_size = max_batch;
    Engine engine(&model_, model_.MakeKvConfig(256), cfg);
    RequestHandle id = engine.AddRequest({.lora = lora,
                                          .prompt_tokens = std::move(prompt),
                                          .max_new_tokens = tokens});
    while (engine.HasWork()) engine.Step();
    return *engine.Output(id);
  }

  LlamaConfig config_;
  LlamaModel model_;
};

TEST_P(GqaSweep, GenerationDeterministicAndInVocab) {
  auto g1 = Generate(0, {7, 3, 9}, 6);
  auto g2 = Generate(0, {7, 3, 9}, 6);
  EXPECT_EQ(g1, g2);
  ASSERT_EQ(g1.size(), 6u);
  for (auto t : g1) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, config_.vocab_size);
  }
}

TEST_P(GqaSweep, CrossLoraBatchingPreservesOutputs) {
  auto solo0 = Generate(0, {5, 6}, 5);
  auto solo1 = Generate(1, {8}, 5);

  EngineConfig cfg;
  cfg.max_batch_size = 4;
  Engine engine(&model_, model_.MakeKvConfig(256), cfg);
  RequestHandle a = engine.AddRequest(
      {.lora = 0, .prompt_tokens = {5, 6}, .max_new_tokens = 5});
  RequestHandle b = engine.AddRequest(
      {.lora = 1, .prompt_tokens = {8}, .max_new_tokens = 5});
  while (engine.HasWork()) engine.Step();
  EXPECT_EQ(*engine.Output(a), solo0);
  EXPECT_EQ(*engine.Output(b), solo1);
}

TEST_P(GqaSweep, LoraDistinguishesTenants) {
  auto g0 = Generate(0, {1, 2, 3, 4}, 8);
  auto g1 = Generate(1, {1, 2, 3, 4}, 8);
  EXPECT_NE(g0, g1);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GqaSweep,
    ::testing::Values(GqaParam{4, 4},   // classic multi-head
                      GqaParam{4, 2},   // GQA 2:1
                      GqaParam{8, 2},   // GQA 4:1 (70B-style ratio)
                      GqaParam{4, 1},   // multi-query attention
                      GqaParam{6, 3}),  // non-power-of-two
    [](const ::testing::TestParamInfo<GqaParam>& info) {
      return "H" + std::to_string(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace punica
