#include "model/tensor_parallel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "model/attention.h"
#include "util/rng.h"

namespace punica {
namespace {

KvCacheConfig KvCfg(const LlamaConfig& c) {
  return {.num_layers = c.num_layers,
          .num_kv_heads = c.num_kv_heads,
          .head_dim = c.head_dim(),
          .page_size = 4,
          .num_pages = 128};
}

TEST(RankConfigTest, DividesHeadsAndFfn) {
  LlamaConfig c = TinyLlama();  // H=4, N=2, F=128
  LlamaConfig r = RankConfig(c, 2);
  EXPECT_EQ(r.num_heads, 2);
  EXPECT_EQ(r.num_kv_heads, 1);
  EXPECT_EQ(r.ffn_hidden, 64);
  EXPECT_EQ(r.hidden_size, c.hidden_size);  // replicated activations
}

TEST(RankConfigDeathTest, IndivisibleAborts) {
  LlamaConfig c = TinyLlama();
  EXPECT_DEATH(RankConfig(c, 3), "divide");
}

TEST(ShardLayerTest, ShapesAndMemory) {
  LlamaConfig c = TinyLlama();
  LayerWeights full = LayerWeights::Random(c, 5);
  TpShardedLayer sharded = ShardLayer(c, full, 2);
  ASSERT_EQ(sharded.ranks.size(), 2u);
  const auto& r0 = sharded.ranks[0];
  EXPECT_EQ(r0.proj[static_cast<int>(Proj::kQ)].dim(1),
            c.hidden_size / 2);                              // head columns
  EXPECT_EQ(r0.proj[static_cast<int>(Proj::kK)].dim(1), c.kv_dim() / 2);
  EXPECT_EQ(r0.proj[static_cast<int>(Proj::kO)].dim(0), c.hidden_size / 2);
  EXPECT_EQ(r0.proj[static_cast<int>(Proj::kGate)].dim(1),
            c.ffn_hidden / 2);
  EXPECT_EQ(r0.proj[static_cast<int>(Proj::kDown)].dim(0),
            c.ffn_hidden / 2);
  // Per-rank memory is 1/tp of the layer (plus replicated norms).
  EXPECT_EQ(RankLayerBytes(c, 2),
            c.layer_weight_bytes() / 2 + c.hidden_size * 4);
}

TEST(ShardLayerTest, ShardsPartitionTheFullMatrix) {
  LlamaConfig c = TinyLlama();
  LayerWeights full = LayerWeights::Random(c, 6);
  TpShardedLayer sharded = ShardLayer(c, full, 2);
  // Column slices of Q reassemble the original.
  const auto& wq = full.proj[static_cast<int>(Proj::kQ)];
  std::int64_t half = wq.dim(1) / 2;
  for (std::int64_t i = 0; i < wq.dim(0); ++i) {
    for (std::int64_t j = 0; j < wq.dim(1); ++j) {
      const auto& shard =
          sharded.ranks[static_cast<std::size_t>(j / half)]
              .proj[static_cast<int>(Proj::kQ)];
      EXPECT_TRUE(wq.at({i, j}) == shard.at({i, j % half}));
    }
  }
}

TEST(ShardLayerTest, QuantizedShardsKeepDtypeAndScaledBytes) {
  // The master weights stay f16; ShardLayer slices the f16 tensor and
  // quantizes each shard to config.weight_dtype (shard-local blocks).
  LlamaConfig c = TinyLlama();
  c.weight_dtype = WeightDtype::kQ8_0;
  LayerWeights full = LayerWeights::Random(TinyLlama(), 5);
  TpShardedLayer sharded = ShardLayer(c, full, 2);
  ASSERT_EQ(sharded.ranks.size(), 2u);
  for (const auto& rank : sharded.ranks) {
    for (int p = 0; p < kNumProj; ++p) {
      EXPECT_EQ(rank.proj[p].dtype(), WeightDtype::kQ8_0);
    }
    // Column-sharded Gate keeps block-multiple rows: bytes halve exactly.
    const auto& gate = rank.proj[static_cast<int>(Proj::kGate)];
    EXPECT_EQ(gate.byte_size(),
              WeightBytesFor(c.hidden_size * c.ffn_hidden / 2,
                             WeightDtype::kQ8_0));
  }
  // The per-rank accounting helper scales with the dtype too.
  EXPECT_LT(RankLayerBytes(c, 2), RankLayerBytes(TinyLlama(), 2));
}

TEST(TpEquivalenceTest, QuantizedShardsMatchF16WithinQuantTolerance) {
  // Shards quantize their own column/row slices (block boundaries differ
  // from the full matrix), so the TP forward is only close to — not
  // bit-equal with — the single-GPU f16 forward. The gap must stay at the
  // q8 quantization noise floor.
  LlamaConfig f16c = TinyLlama();
  LlamaConfig qc = TinyLlama();
  qc.weight_dtype = WeightDtype::kQ8_0;
  LayerWeights full_f16 = LayerWeights::Random(f16c, 17);
  TpShardedLayer sharded = ShardLayer(qc, full_f16, 2);

  auto setup = [&](PagedKvCache& kv, ModelBatch* batch) {
    SeqId s = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(s, 3));
    *batch = ModelBatch::Build({{.seq = s, .lora = -1, .num_tokens = 3,
                                 .pos_offset = 0, .is_prefill = true}});
  };
  Pcg32 rng(9);
  auto h = static_cast<std::size_t>(f16c.hidden_size);
  auto x0 = RandomGaussianVector(3 * h, 1.0f, rng);

  PagedKvCache kv_ref(KvCfg(f16c));
  ModelBatch batch_ref;
  setup(kv_ref, &batch_ref);
  auto x_ref = x0;
  std::vector<const LoraModelWeights*> no_lora(
      static_cast<std::size_t>(batch_ref.segments.num_segments()), nullptr);
  LayerWorkspace ws;
  ws.Resize(f16c, 3, 1);
  LayerForward(f16c, full_f16, no_lora, batch_ref, 0, kv_ref, x_ref, ws);

  PagedKvCache kv_tp(KvCfg(qc));
  ModelBatch batch_tp;
  setup(kv_tp, &batch_tp);
  auto x_tp = x0;
  TpLayerForward(qc, sharded, batch_tp, 0, kv_tp, x_tp);

  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    ASSERT_NEAR(x_tp[i], x_ref[i], 5e-2f) << "activation " << i;
  }
}

struct TpCase {
  LlamaConfig config;
  int tp;
};

class TpEquivalenceSweep : public ::testing::TestWithParam<int> {};

// The core property: a tensor-parallel layer produces the same activations
// and the same KvCache contents as the single-GPU layer (up to fp32
// reduction-order error).
TEST_P(TpEquivalenceSweep, MatchesSingleGpuLayer) {
  int tp = GetParam();
  LlamaConfig c = tp == 3 ? TinyLlama4L() : TinyLlama();
  LayerWeights full = LayerWeights::Random(c, 17);
  TpShardedLayer sharded = ShardLayer(c, full, tp);

  // Mixed batch: one 3-token prefill + one decode with 2 tokens of history.
  auto setup = [&](PagedKvCache& kv, ModelBatch* batch) {
    SeqId sa = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sa, 3));
    SeqId sb = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sb, 3));
    Pcg32 kv_rng(70);
    for (std::int64_t p = 0; p < 2; ++p) {
      auto ke = kv.Entry(sb, 0, p, KvSlot::kKey);
      auto ve = kv.Entry(sb, 0, p, KvSlot::kValue);
      for (std::size_t d = 0; d < ke.size(); ++d) {
        ke[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
        ve[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
      }
    }
    *batch = ModelBatch::Build(
        {{.seq = sa, .lora = -1, .num_tokens = 3, .pos_offset = 0,
          .is_prefill = true},
         {.seq = sb, .lora = -1, .num_tokens = 1, .pos_offset = 2,
          .is_prefill = false}});
  };

  Pcg32 rng(9);
  auto h = static_cast<std::size_t>(c.hidden_size);
  auto x0 = RandomGaussianVector(4 * h, 1.0f, rng);

  PagedKvCache kv_ref(KvCfg(c));
  ModelBatch batch_ref;
  setup(kv_ref, &batch_ref);
  auto x_ref = x0;
  std::vector<const LoraModelWeights*> no_lora(
      static_cast<std::size_t>(batch_ref.segments.num_segments()), nullptr);
  LayerWorkspace ws;
  ws.Resize(c, 4, 1);
  LayerForward(c, full, no_lora, batch_ref, 0, kv_ref, x_ref, ws);

  PagedKvCache kv_tp(KvCfg(c));
  ModelBatch batch_tp;
  setup(kv_tp, &batch_tp);
  auto x_tp = x0;
  TpLayerForward(c, sharded, batch_tp, 0, kv_tp, x_tp);

  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    ASSERT_NEAR(x_tp[i], x_ref[i], 2e-3f) << "activation " << i;
  }
  // KvCache contents written by the sharded ranks must equal the reference.
  for (SeqId s : {batch_ref.entries[0].seq, batch_ref.entries[1].seq}) {
    for (std::int64_t pos = 0; pos < kv_ref.SeqLen(s); ++pos) {
      auto ref_k = kv_ref.Entry(s, 0, pos, KvSlot::kKey);
      auto tp_k = kv_tp.Entry(s, 0, pos, KvSlot::kValue);
      auto ref_k2 = kv_ref.Entry(s, 0, pos, KvSlot::kKey);
      auto tp_k2 = kv_tp.Entry(s, 0, pos, KvSlot::kKey);
      for (std::size_t d = 0; d < ref_k.size(); ++d) {
        ASSERT_NEAR(tp_k2[d].ToFloat(), ref_k2[d].ToFloat(), 2e-3f);
      }
      (void)tp_k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpEquivalenceSweep,
                         ::testing::Values(1, 2, 3));

TEST(TpEquivalenceTest, MultiLayerStackMatches) {
  // Chain all layers of the tiny model through TP and compare final
  // activations with the single-GPU chain.
  LlamaConfig c = TinyLlama();
  const int tp = 2;
  std::vector<LayerWeights> layers;
  std::vector<TpShardedLayer> sharded;
  for (int l = 0; l < c.num_layers; ++l) {
    layers.push_back(LayerWeights::Random(
        c, 100 + static_cast<std::uint64_t>(l)));
    sharded.push_back(ShardLayer(c, layers.back(), tp));
  }

  Pcg32 rng(3);
  auto h = static_cast<std::size_t>(c.hidden_size);
  const int tokens = 5;
  auto x0 = RandomGaussianVector(static_cast<std::size_t>(tokens) * h, 1.0f,
                                 rng);

  PagedKvCache kv_ref(KvCfg(c));
  SeqId s_ref = kv_ref.CreateSequence();
  ASSERT_TRUE(kv_ref.Extend(s_ref, tokens));
  ModelBatch b_ref = ModelBatch::Build({{.seq = s_ref, .lora = -1,
                                         .num_tokens = tokens,
                                         .pos_offset = 0,
                                         .is_prefill = true}});
  auto x_ref = x0;
  std::vector<const LoraModelWeights*> no_lora(1, nullptr);
  LayerWorkspace ws;
  ws.Resize(c, tokens, 1);
  for (int l = 0; l < c.num_layers; ++l) {
    LayerForward(c, layers[static_cast<std::size_t>(l)], no_lora, b_ref, l,
                 kv_ref, x_ref, ws);
  }

  PagedKvCache kv_tp(KvCfg(c));
  SeqId s_tp = kv_tp.CreateSequence();
  ASSERT_TRUE(kv_tp.Extend(s_tp, tokens));
  ModelBatch b_tp = ModelBatch::Build({{.seq = s_tp, .lora = -1,
                                        .num_tokens = tokens,
                                        .pos_offset = 0,
                                        .is_prefill = true}});
  auto x_tp = x0;
  for (int l = 0; l < c.num_layers; ++l) {
    TpLayerForward(c, sharded[static_cast<std::size_t>(l)], b_tp, l, kv_tp,
                   x_tp);
  }

  // Error compounds across layers; scale tolerance with activation size.
  float scale = 0.0f;
  for (float v : x_ref) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    ASSERT_NEAR(x_tp[i], x_ref[i], scale * 5e-3f + 1e-3f) << i;
  }
}

// The tentpole contract: concurrent rank execution (one rank per disjoint
// worker group) is BIT-identical to the serial rank loop — same activations,
// same KvCache bytes — at any thread count, because both modes compute the
// identical fp32 expression per element and meet only at the
// fixed-rank-order all-reduce.
class TpConcurrencySweep : public ::testing::TestWithParam<int> {};

TEST_P(TpConcurrencySweep, ConcurrentMatchesSerialBitExact) {
  const int tp = GetParam();
  LlamaConfig c = tp == 3 ? TinyLlama4L() : TinyLlama();
  LayerWeights full = LayerWeights::Random(c, 17);
  TpShardedLayer sharded = ShardLayer(c, full, tp);

  auto setup = [&](PagedKvCache& kv, ModelBatch* batch) {
    SeqId sa = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sa, 3));
    SeqId sb = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sb, 3));
    Pcg32 kv_rng(70);
    for (std::int64_t p = 0; p < 2; ++p) {
      auto ke = kv.Entry(sb, 0, p, KvSlot::kKey);
      auto ve = kv.Entry(sb, 0, p, KvSlot::kValue);
      for (std::size_t d = 0; d < ke.size(); ++d) {
        ke[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
        ve[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
      }
    }
    *batch = ModelBatch::Build(
        {{.seq = sa, .lora = -1, .num_tokens = 3, .pos_offset = 0,
          .is_prefill = true},
         {.seq = sb, .lora = -1, .num_tokens = 1, .pos_offset = 2,
          .is_prefill = false}});
  };

  Pcg32 rng(9);
  auto h = static_cast<std::size_t>(c.hidden_size);
  auto x0 = RandomGaussianVector(4 * h, 1.0f, rng);

  auto bits = [](float v) {
    std::uint32_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  };

  // Reference: serial rank loop on a width-1 context.
  ComputeContext ctx1({.num_threads = 1});
  PagedKvCache kv_ref(KvCfg(c));
  ModelBatch b_ref;
  setup(kv_ref, &b_ref);
  auto x_ref = x0;
  TpWorkspace ws_ref;
  TpLayerForward(c, sharded, b_ref, 0, kv_ref, x_ref, ws_ref, ctx1, {});

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ComputeContext ctx({.num_threads = threads});
    for (bool concurrent : {false, true}) {
      SCOPED_TRACE(concurrent ? "concurrent" : "serial");
      std::vector<std::unique_ptr<ComputeContext>> views;
      std::vector<const ComputeContext*> ptrs;
      if (concurrent) {
        views = ctx.Split(tp);
        for (const auto& v : views) ptrs.push_back(v.get());
      }
      PagedKvCache kv(KvCfg(c));
      ModelBatch b;
      setup(kv, &b);
      auto x = x0;
      TpWorkspace ws;
      TpLayerForward(c, sharded, b, 0, kv, x, ws, ctx,
                     std::span<const ComputeContext* const>(ptrs));
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(bits(x[i]), bits(x_ref[i])) << "activation " << i;
      }
      for (std::size_t e = 0; e < b.entries.size(); ++e) {
        SeqId s = b.entries[e].seq;
        SeqId s_ref = b_ref.entries[e].seq;
        for (std::int64_t pos = 0; pos < kv.SeqLen(s); ++pos) {
          for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
            auto got = kv.Entry(s, 0, pos, slot);
            auto want = kv_ref.Entry(s_ref, 0, pos, slot);
            ASSERT_EQ(std::memcmp(got.data(), want.data(),
                                  got.size() * sizeof(f16)),
                      0)
                << "kv entry seq=" << e << " pos=" << pos;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpConcurrencySweep,
                         ::testing::Values(2, 3));

TEST(ShardLoraModelTest, SeamShapesAndReplication) {
  LlamaConfig c = TinyLlama();  // H=4, N=2, F=128
  const int rank = 5;  // odd on purpose: the rank dim is never sharded
  LoraModelWeights full = LoraModelWeights::Random(c, rank, 7);
  TpShardedLora sharded = ShardLoraModel(c, full, 2);
  ASSERT_EQ(sharded.ranks.size(), 2u);
  EXPECT_EQ(sharded.rank, rank);
  const auto& l0 = sharded.ranks[0].layers[0];
  const int d = c.head_dim();
  // Column-parallel seams: A replicated [h_in, rank], B sliced [rank,
  // h_out/tp].
  const auto& q = l0.proj[static_cast<int>(Proj::kQ)];
  EXPECT_EQ(q.a.dim(0), c.hidden_size);
  EXPECT_EQ(q.a.dim(1), rank);
  EXPECT_EQ(q.b.dim(0), rank);
  EXPECT_EQ(q.b.dim(1), (c.num_heads / 2) * d);
  const auto& gate = l0.proj[static_cast<int>(Proj::kGate)];
  EXPECT_EQ(gate.b.dim(1), c.ffn_hidden / 2);
  // Row-parallel seams: A sliced [h_in/tp, rank], B replicated [rank,
  // h_out].
  const auto& o = l0.proj[static_cast<int>(Proj::kO)];
  EXPECT_EQ(o.a.dim(0), (c.num_heads / 2) * d);
  EXPECT_EQ(o.a.dim(1), rank);
  EXPECT_EQ(o.b.dim(0), rank);
  EXPECT_EQ(o.b.dim(1), c.hidden_size);
  const auto& down = l0.proj[static_cast<int>(Proj::kDown)];
  EXPECT_EQ(down.a.dim(0), c.ffn_hidden / 2);
  EXPECT_EQ(down.b.dim(1), c.hidden_size);
  // Replicated tensors are bit-equal across ranks; sliced ones partition
  // the master (spot-check B of Q: rank r owns columns [r·h/2, (r+1)·h/2)).
  const auto& full_q = full.layers[0].proj[static_cast<int>(Proj::kQ)];
  for (int r = 0; r < 2; ++r) {
    const auto& shard_q =
        sharded.ranks[static_cast<std::size_t>(r)].layers[0]
            .proj[static_cast<int>(Proj::kQ)];
    for (std::int64_t i = 0; i < full_q.a.dim(0); ++i) {
      for (std::int64_t j = 0; j < rank; ++j) {
        EXPECT_TRUE(shard_q.a.at({i, j}) == full_q.a.at({i, j}));
      }
    }
    std::int64_t half = full_q.b.dim(1) / 2;
    for (std::int64_t i = 0; i < rank; ++i) {
      for (std::int64_t j = 0; j < half; ++j) {
        EXPECT_TRUE(shard_q.b.at({i, j}) == full_q.b.at({i, j + r * half}));
      }
    }
  }
}

// The LoRA tentpole contract: a TP layer over sharded adapters matches the
// single-GPU layer over the full adapters (up to fp32 reduction-order
// error at the two all-reduce seams), with the batch's segment grouping
// unchanged. Uses a rank NOT divisible by tp — the rank dim is never
// split, so any adapter rank shards exactly.
TEST(TpLoraEquivalenceTest, MatchesSingleGpuLayerWithLoraSegments) {
  LlamaConfig c = TinyLlama();
  const int tp = 2;
  LayerWeights full = LayerWeights::Random(c, 17);
  TpShardedLayer sharded = ShardLayer(c, full, tp);
  LoraModelWeights lora_a = LoraModelWeights::Random(c, 5, 21);
  LoraModelWeights lora_b = LoraModelWeights::Random(c, 8, 22);
  TpShardedLora lora_a_tp = ShardLoraModel(c, lora_a, tp);
  TpShardedLora lora_b_tp = ShardLoraModel(c, lora_b, tp);

  // Mixed batch: lora 0 prefill, backbone prefill, lora 1 decode.
  auto setup = [&](PagedKvCache& kv, ModelBatch* batch) {
    SeqId sa = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sa, 3));
    SeqId sb = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sb, 2));
    SeqId sc = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sc, 3));
    Pcg32 kv_rng(70);
    for (std::int64_t p = 0; p < 2; ++p) {
      auto ke = kv.Entry(sc, 0, p, KvSlot::kKey);
      auto ve = kv.Entry(sc, 0, p, KvSlot::kValue);
      for (std::size_t d = 0; d < ke.size(); ++d) {
        ke[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
        ve[d] = f16(static_cast<float>(kv_rng.NextGaussian()) * 0.3f);
      }
    }
    *batch = ModelBatch::Build(
        {{.seq = sa, .lora = 0, .num_tokens = 3, .pos_offset = 0,
          .is_prefill = true},
         {.seq = sb, .lora = -1, .num_tokens = 2, .pos_offset = 0,
          .is_prefill = true},
         {.seq = sc, .lora = 1, .num_tokens = 1, .pos_offset = 2,
          .is_prefill = false}});
  };

  Pcg32 rng(9);
  auto h = static_cast<std::size_t>(c.hidden_size);
  auto x0 = RandomGaussianVector(6 * h, 1.0f, rng);

  PagedKvCache kv_ref(KvCfg(c));
  ModelBatch b_ref;
  setup(kv_ref, &b_ref);
  ASSERT_EQ(b_ref.segments.num_segments(), 3);
  std::vector<const LoraModelWeights*> seg_full;
  for (LoraId id : b_ref.segments.lora_ids) {
    seg_full.push_back(id == 0 ? &lora_a : id == 1 ? &lora_b : nullptr);
  }
  auto x_ref = x0;
  LayerWorkspace ws;
  ws.Resize(c, 6, 8);
  LayerForward(c, full, seg_full, b_ref, 0, kv_ref, x_ref, ws);

  PagedKvCache kv_tp(KvCfg(c));
  ModelBatch b_tp;
  setup(kv_tp, &b_tp);
  std::vector<const TpShardedLora*> seg_tp;
  for (LoraId id : b_tp.segments.lora_ids) {
    seg_tp.push_back(id == 0 ? &lora_a_tp : id == 1 ? &lora_b_tp : nullptr);
  }
  auto x_tp = x0;
  TpLayerForward(c, sharded, b_tp, 0, kv_tp, x_tp,
                 ComputeContext::Default(),
                 std::span<const TpShardedLora* const>(seg_tp));

  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    ASSERT_NEAR(x_tp[i], x_ref[i], 2e-3f) << "activation " << i;
  }
}

// LoRA-active concurrent rank execution stays BIT-identical to the serial
// rank loop: each rank's SGMV shrink/expand runs through its own private
// workspace and the adapter deltas meet only at the fixed-rank-order
// all-reduce, exactly like the dense partials.
TEST(TpLoraConcurrencyTest, ConcurrentMatchesSerialBitExactWithLora) {
  LlamaConfig c = TinyLlama();
  const int tp = 2;
  LayerWeights full = LayerWeights::Random(c, 17);
  TpShardedLayer sharded = ShardLayer(c, full, tp);
  LoraModelWeights lora = LoraModelWeights::Random(c, 8, 31);
  TpShardedLora lora_tp = ShardLoraModel(c, lora, tp);

  auto setup = [&](PagedKvCache& kv, ModelBatch* batch) {
    SeqId sa = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sa, 3));
    SeqId sb = kv.CreateSequence();
    EXPECT_TRUE(kv.Extend(sb, 1));
    *batch = ModelBatch::Build(
        {{.seq = sa, .lora = 0, .num_tokens = 3, .pos_offset = 0,
          .is_prefill = true},
         {.seq = sb, .lora = -1, .num_tokens = 1, .pos_offset = 0,
          .is_prefill = true}});
  };

  Pcg32 rng(9);
  auto h = static_cast<std::size_t>(c.hidden_size);
  auto x0 = RandomGaussianVector(4 * h, 1.0f, rng);
  auto bits = [](float v) {
    std::uint32_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  };

  auto seg_for = [&](const ModelBatch& b) {
    std::vector<const TpShardedLora*> seg;
    for (LoraId id : b.segments.lora_ids) {
      seg.push_back(id == 0 ? &lora_tp : nullptr);
    }
    return seg;
  };

  ComputeContext ctx1({.num_threads = 1});
  PagedKvCache kv_ref(KvCfg(c));
  ModelBatch b_ref;
  setup(kv_ref, &b_ref);
  auto seg_ref = seg_for(b_ref);
  auto x_ref = x0;
  TpWorkspace ws_ref;
  TpLayerForward(c, sharded, b_ref, 0, kv_ref, x_ref, ws_ref, ctx1, {},
                 std::span<const TpShardedLora* const>(seg_ref));

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ComputeContext ctx({.num_threads = threads});
    for (bool concurrent : {false, true}) {
      SCOPED_TRACE(concurrent ? "concurrent" : "serial");
      std::vector<std::unique_ptr<ComputeContext>> views;
      std::vector<const ComputeContext*> ptrs;
      if (concurrent) {
        views = ctx.Split(tp);
        for (const auto& v : views) ptrs.push_back(v.get());
      }
      PagedKvCache kv(KvCfg(c));
      ModelBatch b;
      setup(kv, &b);
      auto seg = seg_for(b);
      auto x = x0;
      TpWorkspace ws;
      TpLayerForward(c, sharded, b, 0, kv, x, ws, ctx,
                     std::span<const ComputeContext* const>(ptrs),
                     std::span<const TpShardedLora* const>(seg));
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(bits(x[i]), bits(x_ref[i])) << "activation " << i;
      }
    }
  }
}

TEST(RangedAttentionTest, SliceConcatenationEqualsFull) {
  LlamaConfig c = TinyLlama();  // 4 heads
  PagedKvCache kv(KvCfg(c));
  Pcg32 rng(5);
  SeqId seq = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(seq, 6));
  for (std::int64_t p = 0; p < 6; ++p) {
    for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
      auto e = kv.Entry(seq, 0, p, slot);
      for (auto& x : e) {
        x = f16(static_cast<float>(rng.NextGaussian()) * 0.4f);
      }
    }
  }
  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<float> full(width);
  std::vector<SeqId> seqs = {seq};
  BatchDecodeAttention(c, kv, seqs, 0, q, full);

  std::size_t half = width / 2;
  std::vector<float> lo(half), hi(half);
  BatchDecodeAttentionRanged(c, kv, seqs, 0,
                             std::span<const float>(q).first(half), lo, 0, 2);
  BatchDecodeAttentionRanged(c, kv, seqs, 0,
                             std::span<const float>(q).subspan(half), hi, 2,
                             4);
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_FLOAT_EQ(lo[i], full[i]);
    EXPECT_FLOAT_EQ(hi[i], full[half + i]);
  }
}

}  // namespace
}  // namespace punica
