#include "workload/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/arrivals.h"

namespace punica {
namespace {

TEST(TraceTest, ClosedLoopBasics) {
  TraceSpec spec;
  spec.num_requests = 1000;
  spec.popularity = Popularity::kUniform;
  auto trace = GenerateClosedLoopTrace(spec);
  ASSERT_EQ(trace.size(), 1000u);
  std::set<LoraId> models;
  for (const auto& r : trace) {
    EXPECT_EQ(r.arrival_time, 0.0);
    EXPECT_GT(r.prompt_len, 0);
    EXPECT_GT(r.output_len, 0);
    models.insert(r.lora_id);
  }
  EXPECT_EQ(models.size(), 32u);  // ⌈√1000⌉
}

TEST(TraceTest, IdsAreSequential) {
  TraceSpec spec;
  spec.num_requests = 10;
  auto trace = GenerateClosedLoopTrace(spec);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(trace[static_cast<std::size_t>(i)].id, i);
  }
}

TEST(TraceTest, DeterministicInSeed) {
  TraceSpec spec;
  spec.seed = 99;
  auto a = GenerateClosedLoopTrace(spec);
  auto b = GenerateClosedLoopTrace(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lora_id, b[i].lora_id);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].output_len, b[i].output_len);
  }
}

TEST(TraceTest, DifferentSeedsDiffer) {
  TraceSpec a, b;
  a.seed = 1;
  b.seed = 2;
  auto ta = GenerateClosedLoopTrace(a);
  auto tb = GenerateClosedLoopTrace(b);
  int diffs = 0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].prompt_len != tb[i].prompt_len) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

TEST(TraceTest, PaperTokenVolume) {
  // §7.2: "1000 requests (generating around 101k tokens)". Our ShareGPT fit
  // generates more (~300k); assert the right order of magnitude.
  TraceSpec spec;
  auto trace = GenerateClosedLoopTrace(spec);
  std::int64_t tokens = TotalOutputTokens(trace);
  EXPECT_GT(tokens, 80000);
  EXPECT_LT(tokens, 500000);
}

TEST(TraceTest, OpenLoopCarriesArrivalTimes) {
  Pcg32 rng(5);
  auto arrivals = PoissonArrivals(2.0, 100.0, rng);
  auto trace = GenerateOpenLoopTrace(arrivals, 10, 1.5, 42);
  ASSERT_EQ(trace.size(), arrivals.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i].arrival_time, arrivals[i]);
    EXPECT_GE(trace[i].lora_id, 0);
    EXPECT_LT(trace[i].lora_id, 10);
  }
}

TEST(TraceTest, DistinctPopularityGivesPerRequestModels) {
  TraceSpec spec;
  spec.num_requests = 50;
  spec.popularity = Popularity::kDistinct;
  auto trace = GenerateClosedLoopTrace(spec);
  std::set<LoraId> models;
  for (const auto& r : trace) models.insert(r.lora_id);
  EXPECT_EQ(models.size(), 50u);
}

TEST(TraceTest, SharedPrefixesArePerTenantAndStable) {
  TraceSpec spec;
  spec.num_requests = 400;
  spec.popularity = Popularity::kUniform;
  spec.shared_prefix = {.enabled = true, .min_tokens = 64, .max_tokens = 256};
  auto trace = GenerateClosedLoopTrace(spec);

  std::map<std::int64_t, std::int32_t> by_group;
  for (const auto& r : trace) {
    ASSERT_EQ(r.prefix_group, r.lora_id);
    ASSERT_GE(r.shared_prefix_len, 64);
    ASSERT_LE(r.shared_prefix_len, 256);
    // The system prompt sits on top of a non-empty per-request prompt.
    ASSERT_GT(r.prompt_len, r.shared_prefix_len);
    auto [it, first] = by_group.emplace(r.prefix_group, r.shared_prefix_len);
    // Every request of a tenant carries the same system prompt length.
    ASSERT_EQ(it->second, r.shared_prefix_len);
    (void)first;
  }
  EXPECT_GT(by_group.size(), 1u);

  // The tenant length helper matches what the generator embedded.
  for (const auto& [group, len] : by_group) {
    EXPECT_EQ(TenantSystemPromptLen(spec.shared_prefix, spec.seed, group),
              len);
  }

  // Disabled spec leaves traces unannotated (bit-compatible with pre-cache
  // workloads).
  TraceSpec off = spec;
  off.shared_prefix.enabled = false;
  for (const auto& r : GenerateClosedLoopTrace(off)) {
    EXPECT_EQ(r.shared_prefix_len, 0);
    EXPECT_EQ(r.prefix_group, -1);
  }
}

TEST(TraceTest, OpenLoopSharedPrefixes) {
  auto trace = GenerateOpenLoopTrace({0.0, 0.5, 1.0, 1.5}, 2, 1.5, 7, {},
                                     {.enabled = true,
                                      .min_tokens = 32,
                                      .max_tokens = 32});
  for (const auto& r : trace) {
    EXPECT_EQ(r.shared_prefix_len, 32);
    EXPECT_EQ(r.prefix_group, r.lora_id);
  }
}

TEST(TraceTest, TenantPriorityIsStableAndInRange) {
  const std::int32_t classes = 4;
  std::set<std::int32_t> seen;
  for (LoraId tenant = 0; tenant < 64; ++tenant) {
    std::int32_t p = TenantPriority(classes, 123, tenant);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, classes);
    // Pure function of (seed, tenant).
    EXPECT_EQ(p, TenantPriority(classes, 123, tenant));
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(classes));
  // One class (the default) pins everything to 0.
  EXPECT_EQ(TenantPriority(1, 123, 17), 0);
  EXPECT_EQ(TenantPriority(0, 123, 17), 0);
}

TEST(TraceTest, GeneratorsStampTenantPriorities) {
  TraceSpec spec;
  spec.num_requests = 200;
  spec.popularity = Popularity::kUniform;
  spec.priority_classes = 3;
  std::map<LoraId, std::int32_t> by_tenant;
  for (const auto& r : GenerateClosedLoopTrace(spec)) {
    EXPECT_EQ(r.priority,
              TenantPriority(spec.priority_classes, spec.seed, r.lora_id));
    auto [it, first] = by_tenant.emplace(r.lora_id, r.priority);
    ASSERT_EQ(it->second, r.priority);  // priority is a tenant attribute
    (void)first;
  }
  // Default spec keeps every request at priority 0.
  for (const auto& r : GenerateClosedLoopTrace(TraceSpec{})) {
    EXPECT_EQ(r.priority, 0);
  }
}

TEST(TraceTest, AssignPoissonArrivalsIsReproducible) {
  TraceSpec spec;
  spec.num_requests = 50;
  auto a = GenerateClosedLoopTrace(spec);
  auto b = a;
  AssignPoissonArrivals(a, 6.0, 31337);
  AssignPoissonArrivals(b, 6.0, 31337);
  double prev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_GT(a[i].arrival_time, prev);
    prev = a[i].arrival_time;
  }
  EXPECT_DOUBLE_EQ(a[0].arrival_time,
                   PoissonArrivalsKeyed(6.0, 1, 31337)[0]);
}

}  // namespace
}  // namespace punica
