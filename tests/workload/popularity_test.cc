#include "workload/popularity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace punica {
namespace {

TEST(PopularityTest, ToStringNames) {
  EXPECT_EQ(ToString(Popularity::kDistinct), "Distinct");
  EXPECT_EQ(ToString(Popularity::kUniform), "Uniform");
  EXPECT_EQ(ToString(Popularity::kSkewed), "Skewed");
  EXPECT_EQ(ToString(Popularity::kIdentical), "Identical");
}

TEST(PopularityTest, NumModels) {
  EXPECT_EQ(NumModelsFor(Popularity::kDistinct, 1000), 1000);
  EXPECT_EQ(NumModelsFor(Popularity::kUniform, 1000), 32);  // ⌈√1000⌉
  EXPECT_EQ(NumModelsFor(Popularity::kUniform, 64), 8);
  EXPECT_EQ(NumModelsFor(Popularity::kIdentical, 1000), 1);
  int skewed = NumModelsFor(Popularity::kSkewed, 1000, 1.5);
  EXPECT_GT(skewed, 5);
  EXPECT_LT(skewed, 40);
}

TEST(PopularityTest, DistinctAssignsUniqueIds) {
  Pcg32 rng(1);
  auto ids = AssignLoraIds(Popularity::kDistinct, 100, rng);
  std::set<LoraId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(PopularityTest, IdenticalAssignsOneId) {
  Pcg32 rng(2);
  auto ids = AssignLoraIds(Popularity::kIdentical, 100, rng);
  for (auto id : ids) EXPECT_EQ(id, 0);
}

TEST(PopularityTest, UniformUsesSqrtModelsRoughlyEvenly) {
  Pcg32 rng(3);
  const int n = 10000;
  auto ids = AssignLoraIds(Popularity::kUniform, n, rng);
  int m = NumModelsFor(Popularity::kUniform, n);
  std::map<LoraId, int> counts;
  for (auto id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, m);
    ++counts[id];
  }
  for (const auto& [id, c] : counts) {
    EXPECT_NEAR(c, n / m, n / m * 0.35) << "model " << id;
  }
}

TEST(PopularityTest, SkewedFollowsGeometricRatio) {
  // Paper definition: requests to the i-th most popular model are α× those
  // of the (i+1)-th.
  Pcg32 rng(4);
  const int n = 200000;
  auto ids = AssignLoraIds(Popularity::kSkewed, n, rng, 1.5);
  std::map<LoraId, int> counts;
  for (auto id : ids) ++counts[id];
  // Model 0 most popular; ratio of successive counts ≈ 1.5.
  ASSERT_GE(counts.size(), 3u);
  double r01 = static_cast<double>(counts[0]) / counts[1];
  double r12 = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(r01, 1.5, 0.12);
  EXPECT_NEAR(r12, 1.5, 0.12);
}

TEST(ZipfAlphaSamplerTest, ProbabilitiesSumToOne) {
  ZipfAlphaSampler sampler(12, 1.5);
  double total = 0.0;
  for (int i = 0; i < sampler.num_models(); ++i) {
    total += sampler.ProbabilityOf(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfAlphaSamplerTest, ProbabilitiesAreGeometric) {
  ZipfAlphaSampler sampler(10, 2.0);
  for (int i = 0; i + 1 < sampler.num_models(); ++i) {
    EXPECT_NEAR(sampler.ProbabilityOf(i) / sampler.ProbabilityOf(i + 1), 2.0,
                1e-9);
  }
}

TEST(ZipfAlphaSamplerTest, SamplesInRange) {
  ZipfAlphaSampler sampler(5, 1.5);
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    LoraId id = sampler.Sample(rng);
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 5);
  }
}

TEST(ZipfAlphaSamplerTest, SingleModelDegenerate) {
  ZipfAlphaSampler sampler(1, 1.5);
  Pcg32 rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0);
}

TEST(PopularityTest, DeterministicInSeed) {
  Pcg32 a(77), b(77);
  auto ia = AssignLoraIds(Popularity::kSkewed, 500, a);
  auto ib = AssignLoraIds(Popularity::kSkewed, 500, b);
  EXPECT_EQ(ia, ib);
}

}  // namespace
}  // namespace punica
