#include "workload/lengths.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace punica {
namespace {

TEST(LengthsTest, WithinClipBounds) {
  ShareGptLengthSampler sampler;
  Pcg32 rng(1);
  for (int i = 0; i < 10000; ++i) {
    LengthSample s = sampler.Sample(rng);
    EXPECT_GE(s.prompt_len, sampler.params().min_len);
    EXPECT_LE(s.prompt_len, sampler.params().max_len);
    EXPECT_GE(s.output_len, sampler.params().min_len);
    EXPECT_LE(s.output_len, sampler.params().max_len);
  }
}

TEST(LengthsTest, MeansNearShareGptStatistics) {
  // Target: mean prompt ≈ 161, mean response ≈ 338 tokens (clipping pulls
  // the sampled means slightly below the analytic lognormal means).
  ShareGptLengthSampler sampler;
  Pcg32 rng(2);
  RunningStat prompts, outputs;
  for (int i = 0; i < 100000; ++i) {
    LengthSample s = sampler.Sample(rng);
    prompts.Add(s.prompt_len);
    outputs.Add(s.output_len);
  }
  EXPECT_NEAR(prompts.mean(), 161.0, 40.0);
  EXPECT_NEAR(outputs.mean(), 338.0, 60.0);
  EXPECT_GT(outputs.mean(), prompts.mean());  // responses longer than prompts
}

TEST(LengthsTest, HeavyRightTail) {
  ShareGptLengthSampler sampler;
  Pcg32 rng(3);
  std::vector<double> prompts;
  for (int i = 0; i < 50000; ++i) {
    prompts.push_back(sampler.Sample(rng).prompt_len);
  }
  double p50 = Percentile(prompts, 50);
  double p99 = Percentile(prompts, 99);
  // Lognormal: p99 ≫ median (heavy tail), unlike a normal where p99≈2.3σ.
  EXPECT_GT(p99, p50 * 8.0);
}

TEST(LengthsTest, AnalyticMeansMatchParams) {
  ShareGptLengthSampler sampler;
  // exp(µ + σ²/2)
  EXPECT_NEAR(sampler.UnclippedPromptMean(), 166.0, 5.0);
  EXPECT_NEAR(sampler.UnclippedOutputMean(), 330.0, 5.0);
}

TEST(LengthsTest, DeterministicInRngState) {
  ShareGptLengthSampler sampler;
  Pcg32 a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    LengthSample sa = sampler.Sample(a);
    LengthSample sb = sampler.Sample(b);
    EXPECT_EQ(sa.prompt_len, sb.prompt_len);
    EXPECT_EQ(sa.output_len, sb.output_len);
  }
}

TEST(LengthsTest, CustomParamsRespected) {
  ShareGptLengthSampler::Params p;
  p.min_len = 10;
  p.max_len = 20;
  ShareGptLengthSampler sampler(p);
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    LengthSample s = sampler.Sample(rng);
    EXPECT_GE(s.prompt_len, 10);
    EXPECT_LE(s.prompt_len, 20);
  }
}

}  // namespace
}  // namespace punica
