#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace punica {
namespace {

std::vector<TraceRequest> SampleTrace() {
  TraceSpec spec;
  spec.num_requests = 50;
  spec.popularity = Popularity::kSkewed;
  spec.shared_prefix = {.enabled = true, .min_tokens = 32, .max_tokens = 64};
  spec.priority_classes = 3;
  auto trace = GenerateClosedLoopTrace(spec);
  // Give some non-trivial arrival times.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_time = static_cast<double>(i) * 0.125;
  }
  return trace;
}

TEST(TraceIoTest, CsvRoundTrip) {
  auto trace = SampleTrace();
  auto back = TraceFromCsv(TraceToCsv(trace));
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].id, trace[i].id);
    EXPECT_DOUBLE_EQ(back[i].arrival_time, trace[i].arrival_time);
    EXPECT_EQ(back[i].lora_id, trace[i].lora_id);
    EXPECT_EQ(back[i].prompt_len, trace[i].prompt_len);
    EXPECT_EQ(back[i].output_len, trace[i].output_len);
    EXPECT_EQ(back[i].shared_prefix_len, trace[i].shared_prefix_len);
    EXPECT_EQ(back[i].prefix_group, trace[i].prefix_group);
    EXPECT_EQ(back[i].priority, trace[i].priority);
  }
}

TEST(TraceIoTest, RoundTripsNonZeroPriority) {
  TraceRequest r{.id = 9, .arrival_time = 2.25, .lora_id = 4,
                 .prompt_len = 16, .output_len = 8, .priority = 3};
  auto back = TraceFromCsv(TraceToCsv({r}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].priority, 3);
}

TEST(TraceIoTest, EmptyTraceIsHeaderOnly) {
  std::vector<TraceRequest> empty;
  std::string csv = TraceToCsv(empty);
  EXPECT_EQ(csv,
            "id,arrival_time,lora_id,prompt_len,output_len,"
            "shared_prefix_len,prefix_group,priority\n");
  EXPECT_TRUE(TraceFromCsv(csv).empty());
}

TEST(TraceIoTest, LoadsLegacyV1Files) {
  // Pre-sharing traces (five columns) still load; the shared-prefix fields
  // default to "nothing shared".
  std::string csv =
      "id,arrival_time,lora_id,prompt_len,output_len\n3,1.5,2,10,20\n";
  auto trace = TraceFromCsv(csv);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].id, 3);
  EXPECT_EQ(trace[0].prompt_len, 10);
  EXPECT_EQ(trace[0].shared_prefix_len, 0);
  EXPECT_EQ(trace[0].prefix_group, -1);
  EXPECT_EQ(trace[0].priority, 0);
}

TEST(TraceIoTest, LoadsLegacyV2Files) {
  // Pre-priority traces (seven columns) still load; priority defaults to 0.
  std::string csv =
      "id,arrival_time,lora_id,prompt_len,output_len,shared_prefix_len,"
      "prefix_group\n7,0.5,1,40,12,32,1\n";
  auto trace = TraceFromCsv(csv);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].id, 7);
  EXPECT_EQ(trace[0].shared_prefix_len, 32);
  EXPECT_EQ(trace[0].prefix_group, 1);
  EXPECT_EQ(trace[0].priority, 0);
}

TEST(TraceIoTest, FileRoundTrip) {
  auto trace = SampleTrace();
  std::string path = ::testing::TempDir() + "/punica_trace_test.csv";
  SaveTraceCsv(path, trace);
  auto back = LoadTraceCsv(path);
  ASSERT_EQ(back.size(), trace.size());
  EXPECT_EQ(back[7].prompt_len, trace[7].prompt_len);
  std::remove(path.c_str());
}

TEST(TraceIoTest, IgnoresTrailingBlankLines) {
  auto trace = SampleTrace();
  std::string csv = TraceToCsv(trace) + "\n\n";
  EXPECT_EQ(TraceFromCsv(csv).size(), trace.size());
}

TEST(TraceIoDeathTest, BadHeaderAborts) {
  EXPECT_DEATH(TraceFromCsv("nope\n1,0,0,1,1\n"), "header");
}

TEST(TraceIoDeathTest, MalformedRowAborts) {
  std::string csv = "id,arrival_time,lora_id,prompt_len,output_len\nxyz\n";
  EXPECT_DEATH(TraceFromCsv(csv), "malformed");
}

TEST(TraceIoDeathTest, NonPositiveLengthAborts) {
  std::string csv =
      "id,arrival_time,lora_id,prompt_len,output_len\n0,0,0,0,5\n";
  EXPECT_DEATH(TraceFromCsv(csv), "non-positive");
}

TEST(TraceIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH(LoadTraceCsv("/nonexistent/path/trace.csv"), "cannot open");
}

}  // namespace
}  // namespace punica
