#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace punica {
namespace {

std::vector<TraceRequest> SampleTrace() {
  TraceSpec spec;
  spec.num_requests = 50;
  spec.popularity = Popularity::kSkewed;
  auto trace = GenerateClosedLoopTrace(spec);
  // Give some non-trivial arrival times.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_time = static_cast<double>(i) * 0.125;
  }
  return trace;
}

TEST(TraceIoTest, CsvRoundTrip) {
  auto trace = SampleTrace();
  auto back = TraceFromCsv(TraceToCsv(trace));
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].id, trace[i].id);
    EXPECT_DOUBLE_EQ(back[i].arrival_time, trace[i].arrival_time);
    EXPECT_EQ(back[i].lora_id, trace[i].lora_id);
    EXPECT_EQ(back[i].prompt_len, trace[i].prompt_len);
    EXPECT_EQ(back[i].output_len, trace[i].output_len);
  }
}

TEST(TraceIoTest, EmptyTraceIsHeaderOnly) {
  std::vector<TraceRequest> empty;
  std::string csv = TraceToCsv(empty);
  EXPECT_EQ(csv, "id,arrival_time,lora_id,prompt_len,output_len\n");
  EXPECT_TRUE(TraceFromCsv(csv).empty());
}

TEST(TraceIoTest, FileRoundTrip) {
  auto trace = SampleTrace();
  std::string path = ::testing::TempDir() + "/punica_trace_test.csv";
  SaveTraceCsv(path, trace);
  auto back = LoadTraceCsv(path);
  ASSERT_EQ(back.size(), trace.size());
  EXPECT_EQ(back[7].prompt_len, trace[7].prompt_len);
  std::remove(path.c_str());
}

TEST(TraceIoTest, IgnoresTrailingBlankLines) {
  auto trace = SampleTrace();
  std::string csv = TraceToCsv(trace) + "\n\n";
  EXPECT_EQ(TraceFromCsv(csv).size(), trace.size());
}

TEST(TraceIoDeathTest, BadHeaderAborts) {
  EXPECT_DEATH(TraceFromCsv("nope\n1,0,0,1,1\n"), "header");
}

TEST(TraceIoDeathTest, MalformedRowAborts) {
  std::string csv = "id,arrival_time,lora_id,prompt_len,output_len\nxyz\n";
  EXPECT_DEATH(TraceFromCsv(csv), "malformed");
}

TEST(TraceIoDeathTest, NonPositiveLengthAborts) {
  std::string csv =
      "id,arrival_time,lora_id,prompt_len,output_len\n0,0,0,0,5\n";
  EXPECT_DEATH(TraceFromCsv(csv), "non-positive");
}

TEST(TraceIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH(LoadTraceCsv("/nonexistent/path/trace.csv"), "cannot open");
}

}  // namespace
}  // namespace punica
