#include "kvcache/kvcache.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

KvCacheConfig SmallConfig(std::int32_t pages = 8, int page_size = 4) {
  return {.num_layers = 2,
          .num_kv_heads = 2,
          .head_dim = 4,
          .page_size = page_size,
          .num_pages = pages};
}

TEST(KvCacheConfigTest, SizeArithmetic) {
  KvCacheConfig c = SmallConfig();
  EXPECT_EQ(c.token_entry_elems(), 8u);          // 2 heads × 4 dim
  EXPECT_EQ(c.page_elems(), 2u * 2 * 8 * 4);     // L·2·entry·P
  EXPECT_EQ(c.page_bytes(), c.page_elems() * 2);
  EXPECT_EQ(c.PagesNeeded(0), 0);
  EXPECT_EQ(c.PagesNeeded(1), 1);
  EXPECT_EQ(c.PagesNeeded(4), 1);
  EXPECT_EQ(c.PagesNeeded(5), 2);
}

TEST(KvCacheTest, CreateExtendFree) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  EXPECT_TRUE(kv.Contains(s));
  EXPECT_EQ(kv.SeqLen(s), 0);
  EXPECT_TRUE(kv.Extend(s, 5));
  EXPECT_EQ(kv.SeqLen(s), 5);
  EXPECT_EQ(kv.SeqPages(s), 2);
  EXPECT_EQ(kv.used_pages(), 2);
  kv.FreeSequence(s);
  EXPECT_FALSE(kv.Contains(s));
  EXPECT_EQ(kv.used_pages(), 0);
}

TEST(KvCacheTest, ExtendByOneAllocatesLazily) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(kv.Extend(s, 1));
    EXPECT_EQ(kv.SeqLen(s), i);
    EXPECT_EQ(kv.SeqPages(s), (i + 3) / 4);
  }
}

TEST(KvCacheTest, ExhaustionRollsBack) {
  PagedKvCache kv(SmallConfig(/*pages=*/2));
  SeqId a = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(a, 8));  // consumes both pages
  SeqId b = kv.CreateSequence();
  EXPECT_FALSE(kv.Extend(b, 1));
  EXPECT_EQ(kv.SeqLen(b), 0);
  EXPECT_EQ(kv.SeqPages(b), 0);
  // Rollback must not leak partial allocations on multi-page failures.
  kv.FreeSequence(a);
  SeqId c = kv.CreateSequence();
  EXPECT_FALSE(kv.Extend(c, 100));     // needs 25 pages > 2
  EXPECT_EQ(kv.free_pages(), 2);       // nothing leaked
  EXPECT_TRUE(kv.Extend(c, 8));
}

TEST(KvCacheTest, EntriesAreSeparatePerSlotAndSurviveOtherSequences) {
  PagedKvCache kv(SmallConfig());
  SeqId a = kv.CreateSequence();
  SeqId b = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(a, 3));
  ASSERT_TRUE(kv.Extend(b, 2));

  // Write distinct patterns into every (seq, layer, pos, slot).
  auto write = [&](SeqId s, int layer, std::int64_t pos, KvSlot slot,
                   float base) {
    auto e = kv.Entry(s, layer, pos, slot);
    for (std::size_t i = 0; i < e.size(); ++i) {
      e[i] = f16(base + static_cast<float>(i));
    }
  };
  write(a, 0, 0, KvSlot::kKey, 10);
  write(a, 0, 0, KvSlot::kValue, 20);
  write(a, 1, 2, KvSlot::kKey, 30);
  write(b, 0, 1, KvSlot::kKey, 40);

  auto expect = [&](SeqId s, int layer, std::int64_t pos, KvSlot slot,
                    float base) {
    auto e = kv.Entry(s, layer, pos, slot);
    for (std::size_t i = 0; i < e.size(); ++i) {
      EXPECT_EQ(e[i].ToFloat(), base + static_cast<float>(i));
    }
  };
  expect(a, 0, 0, KvSlot::kKey, 10);
  expect(a, 0, 0, KvSlot::kValue, 20);
  expect(a, 1, 2, KvSlot::kKey, 30);
  expect(b, 0, 1, KvSlot::kKey, 40);

  // Freeing b must not disturb a (separable layout).
  kv.FreeSequence(b);
  expect(a, 0, 0, KvSlot::kKey, 10);
  expect(a, 1, 2, KvSlot::kKey, 30);
}

TEST(KvCacheTest, PagesReusedAfterFreeWithoutCrosstalk) {
  PagedKvCache kv(SmallConfig(/*pages=*/2));
  SeqId a = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(a, 4));
  auto e = kv.Entry(a, 0, 0, KvSlot::kKey);
  e[0] = f16(7.0f);
  kv.FreeSequence(a);

  SeqId b = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(b, 4));
  // Page contents are stale (no zeroing on alloc — matches GPU behaviour);
  // what matters is that writes land in b's entries and reads are framed
  // correctly.
  auto eb = kv.Entry(b, 0, 0, KvSlot::kKey);
  eb[0] = f16(9.0f);
  EXPECT_EQ(kv.Entry(b, 0, 0, KvSlot::kKey)[0].ToFloat(), 9.0f);
}

TEST(KvCacheTest, PageTableGrowth) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s, 9));  // 3 pages of size 4
  auto table = kv.PageTable(s);
  EXPECT_EQ(table.size(), 3u);
}

TEST(KvCacheTest, ManySequencesInterleaved) {
  KvCacheConfig cfg = SmallConfig(/*pages=*/32);
  PagedKvCache kv(cfg);
  Pcg32 rng(55);
  std::vector<SeqId> seqs;
  std::vector<std::int64_t> lens;
  for (int i = 0; i < 8; ++i) {
    seqs.push_back(kv.CreateSequence());
    lens.push_back(0);
  }
  for (int step = 0; step < 200; ++step) {
    std::size_t i = rng.NextBounded(8);
    if (kv.Extend(seqs[i], 1)) {
      ++lens[i];
      // Tag the newest slot.
      auto e = kv.Entry(seqs[i], 0, lens[i] - 1, KvSlot::kKey);
      e[0] = f16(static_cast<float>(i * 100 + lens[i]));
    }
  }
  // Every sequence's every position still holds its tag.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(kv.SeqLen(seqs[i]), lens[i]);
    for (std::int64_t pos = 0; pos < lens[i]; ++pos) {
      auto e = kv.Entry(seqs[i], 0, pos, KvSlot::kKey);
      EXPECT_EQ(e[0].ToFloat(), static_cast<float>(i * 100 + pos + 1));
    }
  }
}

TEST(KvCacheDeathTest, OutOfRangeAccessAborts) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s, 2));
  EXPECT_DEATH(kv.Entry(s, 0, 2, KvSlot::kKey), "position");
  EXPECT_DEATH(kv.Entry(s, 5, 0, KvSlot::kKey), "PUNICA_CHECK");
  EXPECT_DEATH(kv.Entry(999, 0, 0, KvSlot::kKey), "unknown sequence");
}

}  // namespace
}  // namespace punica
