#include "kvcache/kvcache.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

KvCacheConfig SmallConfig(std::int32_t pages = 8, int page_size = 4) {
  return {.num_layers = 2,
          .num_kv_heads = 2,
          .head_dim = 4,
          .page_size = page_size,
          .num_pages = pages};
}

TEST(KvCacheConfigTest, SizeArithmetic) {
  KvCacheConfig c = SmallConfig();
  EXPECT_EQ(c.token_entry_elems(), 8u);          // 2 heads × 4 dim
  EXPECT_EQ(c.page_elems(), 2u * 2 * 8 * 4);     // L·2·entry·P
  EXPECT_EQ(c.page_bytes(), c.page_elems() * 2);
  EXPECT_EQ(c.PagesNeeded(0), 0);
  EXPECT_EQ(c.PagesNeeded(1), 1);
  EXPECT_EQ(c.PagesNeeded(4), 1);
  EXPECT_EQ(c.PagesNeeded(5), 2);
}

TEST(KvCacheTest, CreateExtendFree) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  EXPECT_TRUE(kv.Contains(s));
  EXPECT_EQ(kv.SeqLen(s), 0);
  EXPECT_TRUE(kv.Extend(s, 5));
  EXPECT_EQ(kv.SeqLen(s), 5);
  EXPECT_EQ(kv.SeqPages(s), 2);
  EXPECT_EQ(kv.used_pages(), 2);
  kv.FreeSequence(s);
  EXPECT_FALSE(kv.Contains(s));
  EXPECT_EQ(kv.used_pages(), 0);
}

TEST(KvCacheTest, ExtendByOneAllocatesLazily) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(kv.Extend(s, 1));
    EXPECT_EQ(kv.SeqLen(s), i);
    EXPECT_EQ(kv.SeqPages(s), (i + 3) / 4);
  }
}

TEST(KvCacheTest, ExhaustionRollsBack) {
  PagedKvCache kv(SmallConfig(/*pages=*/2));
  SeqId a = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(a, 8));  // consumes both pages
  SeqId b = kv.CreateSequence();
  EXPECT_FALSE(kv.Extend(b, 1));
  EXPECT_EQ(kv.SeqLen(b), 0);
  EXPECT_EQ(kv.SeqPages(b), 0);
  // Rollback must not leak partial allocations on multi-page failures.
  kv.FreeSequence(a);
  SeqId c = kv.CreateSequence();
  EXPECT_FALSE(kv.Extend(c, 100));     // needs 25 pages > 2
  EXPECT_EQ(kv.free_pages(), 2);       // nothing leaked
  EXPECT_TRUE(kv.Extend(c, 8));
}

TEST(KvCacheTest, EntriesAreSeparatePerSlotAndSurviveOtherSequences) {
  PagedKvCache kv(SmallConfig());
  SeqId a = kv.CreateSequence();
  SeqId b = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(a, 3));
  ASSERT_TRUE(kv.Extend(b, 2));

  // Write distinct patterns into every (seq, layer, pos, slot).
  auto write = [&](SeqId s, int layer, std::int64_t pos, KvSlot slot,
                   float base) {
    auto e = kv.Entry(s, layer, pos, slot);
    for (std::size_t i = 0; i < e.size(); ++i) {
      e[i] = f16(base + static_cast<float>(i));
    }
  };
  write(a, 0, 0, KvSlot::kKey, 10);
  write(a, 0, 0, KvSlot::kValue, 20);
  write(a, 1, 2, KvSlot::kKey, 30);
  write(b, 0, 1, KvSlot::kKey, 40);

  auto expect = [&](SeqId s, int layer, std::int64_t pos, KvSlot slot,
                    float base) {
    auto e = kv.Entry(s, layer, pos, slot);
    for (std::size_t i = 0; i < e.size(); ++i) {
      EXPECT_EQ(e[i].ToFloat(), base + static_cast<float>(i));
    }
  };
  expect(a, 0, 0, KvSlot::kKey, 10);
  expect(a, 0, 0, KvSlot::kValue, 20);
  expect(a, 1, 2, KvSlot::kKey, 30);
  expect(b, 0, 1, KvSlot::kKey, 40);

  // Freeing b must not disturb a (separable layout).
  kv.FreeSequence(b);
  expect(a, 0, 0, KvSlot::kKey, 10);
  expect(a, 1, 2, KvSlot::kKey, 30);
}

TEST(KvCacheTest, PagesReusedAfterFreeWithoutCrosstalk) {
  PagedKvCache kv(SmallConfig(/*pages=*/2));
  SeqId a = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(a, 4));
  auto e = kv.Entry(a, 0, 0, KvSlot::kKey);
  e[0] = f16(7.0f);
  kv.FreeSequence(a);

  SeqId b = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(b, 4));
  // Page contents are stale (no zeroing on alloc — matches GPU behaviour);
  // what matters is that writes land in b's entries and reads are framed
  // correctly.
  auto eb = kv.Entry(b, 0, 0, KvSlot::kKey);
  eb[0] = f16(9.0f);
  EXPECT_EQ(kv.Entry(b, 0, 0, KvSlot::kKey)[0].ToFloat(), 9.0f);
}

TEST(KvCacheTest, PageTableGrowth) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s, 9));  // 3 pages of size 4
  auto table = kv.PageTable(s);
  EXPECT_EQ(table.size(), 3u);
}

TEST(KvCacheTest, ManySequencesInterleaved) {
  KvCacheConfig cfg = SmallConfig(/*pages=*/32);
  PagedKvCache kv(cfg);
  Pcg32 rng(55);
  std::vector<SeqId> seqs;
  std::vector<std::int64_t> lens;
  for (int i = 0; i < 8; ++i) {
    seqs.push_back(kv.CreateSequence());
    lens.push_back(0);
  }
  for (int step = 0; step < 200; ++step) {
    std::size_t i = rng.NextBounded(8);
    if (kv.Extend(seqs[i], 1)) {
      ++lens[i];
      // Tag the newest slot.
      auto e = kv.Entry(seqs[i], 0, lens[i] - 1, KvSlot::kKey);
      e[0] = f16(static_cast<float>(i * 100 + lens[i]));
    }
  }
  // Every sequence's every position still holds its tag.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(kv.SeqLen(seqs[i]), lens[i]);
    for (std::int64_t pos = 0; pos < lens[i]; ++pos) {
      auto e = kv.Entry(seqs[i], 0, pos, KvSlot::kKey);
      EXPECT_EQ(e[0].ToFloat(), static_cast<float>(i * 100 + pos + 1));
    }
  }
}

// --- Sharing: ForkFrom + copy-on-write ---

TEST(KvCacheForkTest, ForkAliasesWholePagesByReference) {
  PagedKvCache kv(SmallConfig());  // page size 4
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 10));  // 3 pages (2 full + 1 partial)
  ASSERT_EQ(kv.used_pages(), 3);

  SeqId fork = kv.ForkFrom(src, 10);
  EXPECT_EQ(kv.SeqLen(fork), 10);
  EXPECT_EQ(kv.SeqPages(fork), 3);
  // No data moved: the fork holds the same physical pages.
  auto src_table = kv.PageTable(src);
  auto fork_table = kv.PageTable(fork);
  ASSERT_EQ(src_table.size(), fork_table.size());
  for (std::size_t i = 0; i < src_table.size(); ++i) {
    EXPECT_EQ(src_table[i], fork_table[i]);
  }
  EXPECT_EQ(kv.used_pages(), 3);
  EXPECT_EQ(kv.shared_pages(), 3);
  EXPECT_EQ(kv.PageRefCount(fork, 0), 2);

  // Reads through the fork see the source's K/V bits (same storage).
  const PagedKvCache& ckv = kv;
  EXPECT_EQ(ckv.Entry(fork, 0, 9, KvSlot::kKey).data(),
            ckv.Entry(src, 0, 9, KvSlot::kKey).data());
}

TEST(KvCacheForkTest, PartialPrefixForkSharesOnlyCoveringPages) {
  PagedKvCache kv(SmallConfig());
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 10));
  SeqId fork = kv.ForkFrom(src, 5);  // 2 pages: 1 full + 1 partial boundary
  EXPECT_EQ(kv.SeqLen(fork), 5);
  EXPECT_EQ(kv.SeqPages(fork), 2);
  EXPECT_EQ(kv.shared_pages(), 2);
  EXPECT_EQ(kv.PageRefCount(src, 2), 1);  // src's tail stays exclusive
}

TEST(KvCacheForkTest, ExtendCopiesSharedBoundaryPageBeforeWriting) {
  PagedKvCache kv(SmallConfig(/*pages=*/8));
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 6));  // page 0 full, page 1 half
  // Tag the boundary slot the fork will inherit.
  kv.Entry(src, 0, 5, KvSlot::kKey)[0] = f16(55.0f);
  kv.Entry(src, 1, 4, KvSlot::kValue)[0] = f16(44.0f);

  SeqId fork = kv.ForkFrom(src, 6);
  ASSERT_EQ(kv.used_pages(), 2);
  // Growing the fork writes into the shared partial tail page → the fork
  // must deep-copy that one page (CoW) and leave the source untouched.
  ASSERT_TRUE(kv.Extend(fork, 3));  // len 9: CoW page 1 + one fresh page
  EXPECT_EQ(kv.used_pages(), 4);
  EXPECT_EQ(kv.shared_pages(), 1);  // only the full page 0 is still shared
  EXPECT_NE(kv.PageTable(fork)[1], kv.PageTable(src)[1]);
  EXPECT_EQ(kv.PageTable(fork)[0], kv.PageTable(src)[0]);

  // The copy carried the inherited bits...
  const PagedKvCache& ckv = kv;
  EXPECT_EQ(ckv.Entry(fork, 0, 5, KvSlot::kKey)[0].ToFloat(), 55.0f);
  EXPECT_EQ(ckv.Entry(fork, 1, 4, KvSlot::kValue)[0].ToFloat(), 44.0f);
  // ...and diverging writes stay private to the fork.
  kv.Entry(fork, 0, 7, KvSlot::kKey)[0] = f16(77.0f);
  ASSERT_TRUE(kv.Extend(src, 2));  // src grows into its own page 1 (no CoW
                                   // needed: src's tail is exclusive again)
  EXPECT_EQ(kv.used_pages(), 4);
  kv.Entry(src, 0, 7, KvSlot::kKey)[0] = f16(11.0f);
  EXPECT_EQ(ckv.Entry(fork, 0, 7, KvSlot::kKey)[0].ToFloat(), 77.0f);
  EXPECT_EQ(ckv.Entry(src, 0, 7, KvSlot::kKey)[0].ToFloat(), 11.0f);
}

TEST(KvCacheForkTest, PageAlignedForkExtendsWithoutCopy) {
  PagedKvCache kv(SmallConfig());
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 8));  // 2 full pages
  SeqId fork = kv.ForkFrom(src, 8);
  EXPECT_EQ(kv.used_pages(), 2);
  ASSERT_TRUE(kv.Extend(fork, 1));  // growth starts a fresh page — no CoW
  EXPECT_EQ(kv.used_pages(), 3);
  EXPECT_EQ(kv.shared_pages(), 2);
}

TEST(KvCacheForkTest, CowExhaustionRollsBackCleanly) {
  PagedKvCache kv(SmallConfig(/*pages=*/2));
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 6));  // both pages in use, page 1 partial
  SeqId fork = kv.ForkFrom(src, 6);
  // Extending the fork needs the CoW copy of page 1, but the pool is empty.
  EXPECT_FALSE(kv.Extend(fork, 1));
  EXPECT_EQ(kv.SeqLen(fork), 6);
  EXPECT_EQ(kv.SeqPages(fork), 2);
  EXPECT_EQ(kv.PageTable(fork)[1], kv.PageTable(src)[1]);  // still aliased
  EXPECT_EQ(kv.free_pages(), 0);
  // Freeing the source's references doesn't free shared pages...
  kv.FreeSequence(src);
  EXPECT_EQ(kv.free_pages(), 0);
  EXPECT_EQ(kv.shared_pages(), 0);
  // ...but now the fork owns its tail exclusively: no copy needed. The
  // fork still cannot grow (no free page for slot 6? it CAN: len 6 % 4 != 0
  // and page is exclusive → writes land in page 1 directly).
  EXPECT_TRUE(kv.Extend(fork, 2));
  EXPECT_EQ(kv.SeqLen(fork), 8);
  kv.FreeSequence(fork);
  EXPECT_EQ(kv.free_pages(), 2);
}

TEST(KvCacheForkTest, FreeOrderIndependence) {
  PagedKvCache kv(SmallConfig());
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 7));
  SeqId f1 = kv.ForkFrom(src, 7);
  SeqId f2 = kv.ForkFrom(src, 4);
  EXPECT_EQ(kv.used_pages(), 2);
  kv.FreeSequence(src);  // forks keep the pages alive
  EXPECT_EQ(kv.used_pages(), 2);
  const PagedKvCache& ckv = kv;
  (void)ckv.Entry(f1, 1, 6, KvSlot::kValue);  // still addressable
  kv.FreeSequence(f1);
  EXPECT_EQ(kv.used_pages(), 1);  // page 0 held by f2
  kv.FreeSequence(f2);
  EXPECT_EQ(kv.used_pages(), 0);
  EXPECT_EQ(kv.free_pages(), 8);
}

TEST(KvCacheForkDeathTest, WritingSharedPageAborts) {
  PagedKvCache kv(SmallConfig());
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 4));
  SeqId fork = kv.ForkFrom(src, 4);
  (void)fork;
  // The CoW invariant is enforced, not advisory: mutable access to a shared
  // page is a programming error on either sequence.
  EXPECT_DEATH(kv.Entry(src, 0, 0, KvSlot::kKey), "shared page");
  EXPECT_DEATH(kv.Entry(fork, 0, 3, KvSlot::kKey), "shared page");
}

TEST(KvCacheForkDeathTest, ForkBeyondSourceLengthAborts) {
  PagedKvCache kv(SmallConfig());
  SeqId src = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(src, 4));
  EXPECT_DEATH(kv.ForkFrom(src, 5), "fork beyond source length");
}

TEST(KvCacheDeathTest, OutOfRangeAccessAborts) {
  PagedKvCache kv(SmallConfig());
  SeqId s = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s, 2));
  EXPECT_DEATH(kv.Entry(s, 0, 2, KvSlot::kKey), "position");
  EXPECT_DEATH(kv.Entry(s, 5, 0, KvSlot::kKey), "PUNICA_CHECK");
  EXPECT_DEATH(kv.Entry(999, 0, 0, KvSlot::kKey), "unknown sequence");
}

}  // namespace
}  // namespace punica
