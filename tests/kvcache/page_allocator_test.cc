#include "kvcache/page_allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

TEST(PageAllocatorTest, AllocatesAllPagesExactlyOnce) {
  PageAllocator alloc(16);
  std::set<PageId> seen;
  for (int i = 0; i < 16; ++i) {
    auto p = alloc.Alloc();
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(seen.insert(*p).second) << "duplicate page " << *p;
    EXPECT_GE(*p, 0);
    EXPECT_LT(*p, 16);
    EXPECT_EQ(alloc.RefCount(*p), 1);
  }
  EXPECT_FALSE(alloc.Alloc().has_value());
  EXPECT_EQ(alloc.free_pages(), 0);
  EXPECT_EQ(alloc.used_pages(), 16);
}

TEST(PageAllocatorTest, ReleaseMakesPageReusable) {
  PageAllocator alloc(1);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(alloc.Alloc().has_value());
  alloc.Release(*p);
  EXPECT_EQ(alloc.free_pages(), 1);
  auto q = alloc.Alloc();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, *p);
}

TEST(PageAllocatorTest, ZeroCapacity) {
  PageAllocator alloc(0);
  EXPECT_FALSE(alloc.Alloc().has_value());
  EXPECT_EQ(alloc.capacity(), 0);
}

TEST(PageAllocatorTest, IsAllocatedTracksState) {
  PageAllocator alloc(4);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(alloc.IsAllocated(*p));
  alloc.Release(*p);
  EXPECT_FALSE(alloc.IsAllocated(*p));
}

TEST(PageAllocatorTest, RetainReleaseCountsAndSharedGauge) {
  PageAllocator alloc(4);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(alloc.shared_pages(), 0);
  alloc.Retain(*p);
  EXPECT_EQ(alloc.RefCount(*p), 2);
  EXPECT_EQ(alloc.shared_pages(), 1);
  alloc.Retain(*p);
  EXPECT_EQ(alloc.RefCount(*p), 3);
  EXPECT_EQ(alloc.shared_pages(), 1);  // shared is a >1 gauge, not a sum
  alloc.Release(*p);
  EXPECT_EQ(alloc.shared_pages(), 1);
  alloc.Release(*p);
  EXPECT_EQ(alloc.shared_pages(), 0);
  EXPECT_TRUE(alloc.IsAllocated(*p));  // one reference left
  EXPECT_EQ(alloc.free_pages(), 3);
  alloc.Release(*p);
  EXPECT_EQ(alloc.free_pages(), 4);
}

// A retained page must survive releases by other holders: exhaustion then
// release returns exactly the zero-refcount pages to the pool, in a reusable
// state.
TEST(PageAllocatorTest, ExhaustionThenReleaseReuse) {
  PageAllocator alloc(4);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    auto p = alloc.Alloc();
    ASSERT_TRUE(p.has_value());
    pages.push_back(*p);
  }
  ASSERT_FALSE(alloc.Alloc().has_value());

  // Share page 0 (refcount 2); then drop one reference on every page.
  alloc.Retain(pages[0]);
  for (PageId p : pages) alloc.Release(p);
  // Pages 1..3 are free again; page 0 is still held by the second reference.
  EXPECT_EQ(alloc.free_pages(), 3);
  EXPECT_TRUE(alloc.IsAllocated(pages[0]));

  std::set<PageId> reused;
  for (int i = 0; i < 3; ++i) {
    auto p = alloc.Alloc();
    ASSERT_TRUE(p.has_value());
    EXPECT_NE(*p, pages[0]) << "allocator handed out a still-referenced page";
    EXPECT_TRUE(reused.insert(*p).second);
  }
  EXPECT_FALSE(alloc.Alloc().has_value());
  alloc.Release(pages[0]);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, pages[0]);
}

TEST(PageAllocatorDeathTest, DoubleFreeAborts) {
  PageAllocator alloc(4);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  alloc.Release(*p);
  EXPECT_DEATH(alloc.Release(*p), "double free");
}

TEST(PageAllocatorDeathTest, OverRetainAborts) {
  PageAllocator alloc(4);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  alloc.Release(*p);
  // Retaining a page that holds no references resurrects freed memory — the
  // over-retain programming error.
  EXPECT_DEATH(alloc.Retain(*p), "over-retain");
}

TEST(PageAllocatorDeathTest, ForeignPageAborts) {
  PageAllocator alloc(4);
  EXPECT_DEATH(alloc.Release(99), "foreign page");
  EXPECT_DEATH(alloc.Release(-1), "foreign page");
  EXPECT_DEATH(alloc.Retain(99), "foreign page");
}

// Property test: random alloc/retain/release churn never double-allocates,
// never leaks, and a page returns to the free list exactly when its last
// reference drops.
TEST(PageAllocatorPropertyTest, RandomChurnInvariants) {
  Pcg32 rng(123);
  PageAllocator alloc(64);
  std::vector<PageId> live;  // one element per outstanding reference
  for (int step = 0; step < 20000; ++step) {
    double roll = rng.NextDouble();
    if (live.empty() || (roll < 0.40 && alloc.free_pages() > 0)) {
      auto p = alloc.Alloc();
      if (p.has_value()) {
        // A fresh page must not have an outstanding reference.
        EXPECT_EQ(std::count(live.begin(), live.end(), *p), 0);
        live.push_back(*p);
      } else {
        EXPECT_EQ(alloc.used_pages(), 64);
      }
    } else if (roll < 0.55 && !live.empty()) {
      std::size_t idx = rng.NextBounded(
          static_cast<std::uint32_t>(live.size()));
      alloc.Retain(live[idx]);
      live.push_back(live[idx]);
    } else if (!live.empty()) {
      std::size_t idx = rng.NextBounded(
          static_cast<std::uint32_t>(live.size()));
      alloc.Release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(alloc.free_pages() + alloc.used_pages(), 64);
    if (step % 250 != 0) continue;
    // Full sweep (periodically — it is quadratic in outstanding refs):
    // used == distinct live pages, refcounts match reference multiplicity,
    // shared gauge == pages with multiplicity > 1.
    std::set<PageId> distinct(live.begin(), live.end());
    ASSERT_EQ(alloc.used_pages(), static_cast<std::int32_t>(distinct.size()));
    std::int32_t shared = 0;
    for (PageId p : distinct) {
      auto refs = static_cast<std::int32_t>(
          std::count(live.begin(), live.end(), p));
      ASSERT_EQ(alloc.RefCount(p), refs);
      if (refs > 1) ++shared;
    }
    ASSERT_EQ(alloc.shared_pages(), shared);
  }
  for (PageId p : live) alloc.Release(p);
  EXPECT_EQ(alloc.free_pages(), 64);
}

}  // namespace
}  // namespace punica
