#include "kvcache/page_allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

TEST(PageAllocatorTest, AllocatesAllPagesExactlyOnce) {
  PageAllocator alloc(16);
  std::set<PageId> seen;
  for (int i = 0; i < 16; ++i) {
    auto p = alloc.Alloc();
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(seen.insert(*p).second) << "duplicate page " << *p;
    EXPECT_GE(*p, 0);
    EXPECT_LT(*p, 16);
  }
  EXPECT_FALSE(alloc.Alloc().has_value());
  EXPECT_EQ(alloc.free_pages(), 0);
  EXPECT_EQ(alloc.used_pages(), 16);
}

TEST(PageAllocatorTest, FreeMakesPageReusable) {
  PageAllocator alloc(1);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(alloc.Alloc().has_value());
  alloc.Free(*p);
  EXPECT_EQ(alloc.free_pages(), 1);
  auto q = alloc.Alloc();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, *p);
}

TEST(PageAllocatorTest, ZeroCapacity) {
  PageAllocator alloc(0);
  EXPECT_FALSE(alloc.Alloc().has_value());
  EXPECT_EQ(alloc.capacity(), 0);
}

TEST(PageAllocatorTest, IsAllocatedTracksState) {
  PageAllocator alloc(4);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(alloc.IsAllocated(*p));
  alloc.Free(*p);
  EXPECT_FALSE(alloc.IsAllocated(*p));
}

TEST(PageAllocatorDeathTest, DoubleFreeAborts) {
  PageAllocator alloc(4);
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.has_value());
  alloc.Free(*p);
  EXPECT_DEATH(alloc.Free(*p), "double free");
}

TEST(PageAllocatorDeathTest, ForeignPageAborts) {
  PageAllocator alloc(4);
  EXPECT_DEATH(alloc.Free(99), "foreign page");
  EXPECT_DEATH(alloc.Free(-1), "foreign page");
}

// Property test: random alloc/free churn never double-allocates, never
// leaks, and the free count always equals capacity − live.
TEST(PageAllocatorPropertyTest, RandomChurnInvariants) {
  Pcg32 rng(123);
  PageAllocator alloc(64);
  std::vector<PageId> live;
  for (int step = 0; step < 20000; ++step) {
    bool do_alloc = live.empty() || (rng.NextDouble() < 0.55 &&
                                     alloc.free_pages() > 0);
    if (do_alloc) {
      auto p = alloc.Alloc();
      if (p.has_value()) {
        // Must not already be live.
        EXPECT_EQ(std::count(live.begin(), live.end(), *p), 0);
        live.push_back(*p);
      } else {
        EXPECT_EQ(static_cast<int>(live.size()), 64);
      }
    } else if (!live.empty()) {
      std::size_t idx = rng.NextBounded(
          static_cast<std::uint32_t>(live.size()));
      alloc.Free(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(alloc.used_pages(), static_cast<std::int32_t>(live.size()));
    ASSERT_EQ(alloc.free_pages() + alloc.used_pages(), 64);
  }
  for (PageId p : live) alloc.Free(p);
  EXPECT_EQ(alloc.free_pages(), 64);
}

}  // namespace
}  // namespace punica
