#include "kvcache/prefix_index.h"

#include <gtest/gtest.h>

#include <vector>

namespace punica {
namespace {

std::vector<std::int32_t> Toks(std::initializer_list<std::int32_t> xs) {
  return std::vector<std::int32_t>(xs);
}

TEST(PrefixIndexTest, EmptyIndexMissesEverything) {
  PrefixIndex idx;
  EXPECT_EQ(idx.size(), 0u);
  auto m = idx.Lookup(Toks({1, 2, 3}));
  EXPECT_EQ(m.entry, -1);
  EXPECT_EQ(m.matched_tokens, 0);
}

TEST(PrefixIndexTest, ExactAndPartialMatch) {
  PrefixIndex idx;
  auto r = idx.Insert(Toks({1, 2, 3, 4}), /*seq=*/7);
  ASSERT_TRUE(r.inserted);

  auto exact = idx.Lookup(Toks({1, 2, 3, 4}));
  EXPECT_EQ(exact.entry, r.entry);
  EXPECT_EQ(exact.seq, 7);
  EXPECT_EQ(exact.matched_tokens, 4);

  // Query longer than the entry: matches the whole entry.
  auto longer = idx.Lookup(Toks({1, 2, 3, 4, 9, 9}));
  EXPECT_EQ(longer.entry, r.entry);
  EXPECT_EQ(longer.matched_tokens, 4);

  // Query diverging mid-entry: matches the common prefix — the caller can
  // still fork the entry's sequence at that depth.
  auto partial = idx.Lookup(Toks({1, 2, 9}));
  EXPECT_EQ(partial.entry, r.entry);
  EXPECT_EQ(partial.matched_tokens, 2);

  // Divergence at the first token: miss.
  EXPECT_EQ(idx.Lookup(Toks({2, 1})).matched_tokens, 0);
}

TEST(PrefixIndexTest, LongestOfSeveralEntriesWins) {
  PrefixIndex idx;
  idx.Insert(Toks({5, 6}), 1);
  auto deep = idx.Insert(Toks({5, 6, 7, 8}), 2);
  idx.Insert(Toks({5, 9}), 3);

  auto m = idx.Lookup(Toks({5, 6, 7, 8, 100}));
  EXPECT_EQ(m.entry, deep.entry);
  EXPECT_EQ(m.seq, 2);
  EXPECT_EQ(m.matched_tokens, 4);

  // A query stopping between the two nested entries matches depth 3; the
  // returned holder must still cover those 3 tokens (the deep entry does).
  auto mid = idx.Lookup(Toks({5, 6, 7, 42}));
  EXPECT_EQ(mid.entry, deep.entry);
  EXPECT_EQ(mid.matched_tokens, 3);
}

TEST(PrefixIndexTest, DuplicateInsertTouchesInsteadOfDuplicating) {
  PrefixIndex idx;
  auto a = idx.Insert(Toks({1, 2}), 10);
  auto b = idx.Insert(Toks({3, 4}), 11);
  ASSERT_TRUE(a.inserted);
  ASSERT_TRUE(b.inserted);
  // Re-inserting {1,2} touches entry a — so b becomes the LRU victim.
  auto dup = idx.Insert(Toks({1, 2}), 99);
  EXPECT_FALSE(dup.inserted);
  EXPECT_EQ(dup.entry, a.entry);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.entry_seq(a.entry), 10);  // original holder kept
  ASSERT_TRUE(idx.LruVictim().has_value());
  EXPECT_EQ(*idx.LruVictim(), b.entry);
}

TEST(PrefixIndexTest, LruOrderFollowsTouches) {
  PrefixIndex idx;
  auto a = idx.Insert(Toks({1}), 1);
  auto b = idx.Insert(Toks({2}), 2);
  auto c = idx.Insert(Toks({3}), 3);
  EXPECT_EQ(*idx.LruVictim(), a.entry);
  idx.Touch(a.entry);
  EXPECT_EQ(*idx.LruVictim(), b.entry);
  idx.Touch(b.entry);
  EXPECT_EQ(*idx.LruVictim(), c.entry);
}

TEST(PrefixIndexTest, PinBlocksEviction) {
  PrefixIndex idx;
  auto a = idx.Insert(Toks({1}), 1);
  auto b = idx.Insert(Toks({2}), 2);
  idx.Pin(a.entry);
  EXPECT_EQ(*idx.LruVictim(), b.entry);
  idx.Pin(b.entry);
  EXPECT_FALSE(idx.LruVictim().has_value());
  EXPECT_TRUE(idx.EvictableEntries().empty());
  idx.Unpin(a.entry);
  EXPECT_EQ(*idx.LruVictim(), a.entry);
  idx.Unpin(b.entry);
  EXPECT_EQ(idx.EvictableEntries().size(), 2u);
}

TEST(PrefixIndexTest, EraseReturnsSeqAndRestructuresTrie) {
  PrefixIndex idx;
  auto shallow = idx.Insert(Toks({5, 6}), 1);
  auto deep = idx.Insert(Toks({5, 6, 7, 8}), 2);
  EXPECT_EQ(idx.cached_tokens(), 6);

  // Erasing the deep entry must re-point lookups at the shallow one.
  EXPECT_EQ(idx.Erase(deep.entry), 2);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.cached_tokens(), 2);
  auto m = idx.Lookup(Toks({5, 6, 7, 8}));
  EXPECT_EQ(m.entry, shallow.entry);
  EXPECT_EQ(m.matched_tokens, 2);

  // And erasing the last entry empties the index completely.
  EXPECT_EQ(idx.Erase(shallow.entry), 1);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.cached_tokens(), 0);
  EXPECT_EQ(idx.Lookup(Toks({5, 6})).matched_tokens, 0);
}

TEST(PrefixIndexTest, EraseShallowKeepsDeepReachable) {
  PrefixIndex idx;
  auto shallow = idx.Insert(Toks({5, 6}), 1);
  auto deep = idx.Insert(Toks({5, 6, 7, 8}), 2);
  idx.Erase(shallow.entry);
  auto m = idx.Lookup(Toks({5, 6, 9}));
  EXPECT_EQ(m.entry, deep.entry);
  EXPECT_EQ(m.matched_tokens, 2);  // common prefix with the deep entry
}

TEST(PrefixIndexTest, EraseSiblingKeepsOthers) {
  PrefixIndex idx;
  auto a = idx.Insert(Toks({1, 2, 3}), 1);
  auto b = idx.Insert(Toks({1, 2, 4}), 2);
  idx.Erase(a.entry);
  auto m = idx.Lookup(Toks({1, 2, 4}));
  EXPECT_EQ(m.entry, b.entry);
  EXPECT_EQ(m.matched_tokens, 3);
  // The shared {1,2} path must survive and still route to b.
  EXPECT_EQ(idx.Lookup(Toks({1, 2, 3})).entry, b.entry);
  EXPECT_EQ(idx.Lookup(Toks({1, 2, 3})).matched_tokens, 2);
}

TEST(PrefixIndexTest, FindExactMatchesWholeKeysOnly) {
  PrefixIndex idx;
  auto a = idx.Insert(Toks({1, 2, 3}), 1);
  idx.Insert(Toks({1, 2, 3, 4}), 2);
  EXPECT_EQ(idx.FindExact(Toks({1, 2, 3})), a.entry);
  EXPECT_FALSE(idx.FindExact(Toks({1, 2})).has_value());      // prefix only
  EXPECT_FALSE(idx.FindExact(Toks({1, 2, 3, 9})).has_value());
  EXPECT_FALSE(idx.FindExact({}).has_value());
  idx.Erase(a.entry);
  EXPECT_FALSE(idx.FindExact(Toks({1, 2, 3})).has_value());
}

TEST(PrefixIndexDeathTest, Misuse) {
  PrefixIndex idx;
  EXPECT_DEATH(idx.Insert({}, 1), "empty prefix");
  EXPECT_DEATH(idx.Touch(42), "unknown prefix entry");
  auto a = idx.Insert(Toks({1}), 1);
  idx.Pin(a.entry);
  EXPECT_DEATH(idx.Erase(a.entry), "pinned");
  idx.Unpin(a.entry);
  EXPECT_DEATH(idx.Unpin(a.entry), "unbalanced unpin");
}

}  // namespace
}  // namespace punica
