#include "serving/arrival_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace punica {
namespace {

// Payload convention for these tests: `lora` tags the producer, and
// `prompt_len` carries the per-producer sequence number.
SubmitSpec Tagged(int producer, int seq) {
  SubmitSpec spec;
  spec.lora = producer;
  spec.prompt_len = seq;
  spec.max_new_tokens = 1;
  return spec;
}

TEST(ArrivalQueueTest, SingleThreadRoundTrip) {
  ArrivalQueue q(4);
  EXPECT_TRUE(q.Push(Tagged(0, 1)));
  EXPECT_TRUE(q.Push(Tagged(0, 2)));
  EXPECT_EQ(q.size(), 2u);
  auto a = q.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->prompt_len, 1);
  auto b = q.TryPop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->prompt_len, 2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(ArrivalQueueTest, TryPushRefusesWhenFull) {
  ArrivalQueue q(2);
  EXPECT_TRUE(q.TryPush(Tagged(0, 1)));
  EXPECT_TRUE(q.TryPush(Tagged(0, 2)));
  EXPECT_FALSE(q.TryPush(Tagged(0, 3)));  // bounded: the shed-at-door path
  q.Pop();
  EXPECT_TRUE(q.TryPush(Tagged(0, 3)));
}

TEST(ArrivalQueueTest, BoundedPushBlocksUntilConsumerDrains) {
  ArrivalQueue q(1);
  ASSERT_TRUE(q.Push(Tagged(0, 0)));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(Tagged(0, 1)));  // must block: queue is full
    pushed.store(true);
  });
  // The producer cannot complete until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  auto first = q.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->prompt_len, 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop()->prompt_len, 1);
}

TEST(ArrivalQueueTest, ShutdownWakesBlockedConsumer) {
  ArrivalQueue q(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());  // blocked, then woken empty-handed
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Shutdown();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(ArrivalQueueTest, ShutdownWakesBlockedProducer) {
  ArrivalQueue q(1);
  ASSERT_TRUE(q.Push(Tagged(0, 0)));
  std::atomic<bool> refused{false};
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(Tagged(0, 1)));  // blocked on full, woken by shutdown
    refused.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Shutdown();
  producer.join();
  EXPECT_TRUE(refused.load());
  // Work accepted before shutdown still drains.
  auto residue = q.Pop();
  ASSERT_TRUE(residue.has_value());
  EXPECT_EQ(residue->prompt_len, 0);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(ArrivalQueueTest, MpscStressDeliversEverythingExactlyOnce) {
  const int kProducers = 4;
  const int kPerProducer = 500;
  ArrivalQueue q(8);  // small bound: forces constant blocking contention
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(Tagged(p, i)));
      }
    });
  }
  // Single consumer: count deliveries and check per-producer FIFO (a
  // producer's items must arrive in the order it pushed them).
  std::vector<int> next_seq(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    auto spec = q.Pop();
    ASSERT_TRUE(spec.has_value());
    int p = static_cast<int>(spec->lora);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(spec->prompt_len, next_seq[static_cast<std::size_t>(p)]);
    ++next_seq[static_cast<std::size_t>(p)];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[static_cast<std::size_t>(p)], kPerProducer);
  }
}

TEST(ArrivalQueueTest, FifoUnderSingleProducerContention) {
  ArrivalQueue q(3);
  const int kItems = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(Tagged(0, i)));
    q.Shutdown();
  });
  int expected = 0;
  while (auto spec = q.Pop()) {
    EXPECT_EQ(spec->prompt_len, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(ArrivalQueueDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(ArrivalQueue q(0), "positive bound");
}

}  // namespace
}  // namespace punica
