#include "serving/load_generator.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/arrivals.h"

namespace punica {
namespace {

TEST(LoadGeneratorTest, OpenLoopLoadIsDeterministicAndOrdered) {
  OpenLoopSpec spec;
  spec.rate_rps = 10.0;
  spec.num_requests = 64;
  spec.priority_classes = 3;
  auto a = GenerateOpenLoopLoad(spec);
  auto b = GenerateOpenLoopLoad(spec);
  ASSERT_EQ(a.size(), 64u);
  double prev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].lora_id, b[i].lora_id);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_GT(a[i].arrival_time, prev);
    prev = a[i].arrival_time;
    EXPECT_GE(a[i].priority, 0);
    EXPECT_LT(a[i].priority, 3);
  }
  // The schedule is exactly the keyed Poisson process for (rate, seed).
  auto times = PoissonArrivalsKeyed(spec.rate_rps, a.size(), spec.seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, times[i]);
  }
}

TEST(LoadGeneratorTest, SpecFromTraceCopiesEveryField) {
  TraceRequest r{.id = 5,
                 .arrival_time = 1.25,
                 .lora_id = 3,
                 .prompt_len = 40,
                 .output_len = 12,
                 .shared_prefix_len = 16,
                 .prefix_group = 3,
                 .priority = 2};
  SubmitSpec spec = SpecFromTrace(r);
  EXPECT_EQ(spec.lora, 3);
  EXPECT_EQ(spec.prompt_len, 40);
  EXPECT_EQ(spec.max_new_tokens, 12);
  EXPECT_DOUBLE_EQ(spec.arrival_time, 1.25);
  EXPECT_EQ(spec.shared_prefix_len, 16);
  EXPECT_EQ(spec.prefix_group, 3);
  EXPECT_EQ(spec.priority, 2);
  EXPECT_TRUE(spec.prompt_tokens.empty());  // synthetic prompt
}

TEST(LoadGeneratorTest, TraceSubmitterDeliversWholeTraceAndShutsDown) {
  OpenLoopSpec gen;
  gen.rate_rps = 50.0;
  gen.num_requests = 40;
  auto trace = GenerateOpenLoopLoad(gen);
  std::vector<SubmitSpec> specs;
  for (const auto& r : trace) specs.push_back(SpecFromTrace(r));

  ArrivalQueue queue(8);
  TraceSubmitter submitter(specs, /*time_scale=*/0.01);
  submitter.Start(&queue, /*num_threads=*/3);

  // Consume on this thread; Pop returns nullopt once the last submitter
  // finishes and shuts the queue down.
  std::map<int, int> by_prompt_len;
  int received = 0;
  while (auto spec = queue.Pop()) {
    ++by_prompt_len[spec->prompt_len];
    // Arrival stamps were rescaled to the submitter's wall clock, so the
    // consumer's timeline is self-consistent.
    EXPECT_LE(spec->arrival_time, trace[39].arrival_time * 0.01 + 1e-9);
    ++received;
  }
  submitter.Join();
  EXPECT_EQ(received, 40);
  std::map<int, int> expected;
  for (const auto& r : trace) ++expected[r.prompt_len];
  EXPECT_EQ(by_prompt_len, expected);
}

}  // namespace
}  // namespace punica
