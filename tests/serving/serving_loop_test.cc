#include "serving/serving_loop.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "runtime/runner.h"
#include "serving/load_generator.h"
#include "workload/trace.h"

namespace punica {
namespace {

RunnerConfig SmallRunner() {
  RunnerConfig cfg;
  cfg.max_batch_size = 8;
  cfg.kv_capacity_tokens = 20000;
  cfg.lora_load_latency_s = 2e-3;
  return cfg;
}

struct SimCluster {
  CostModel cm{A100Sxm80GB()};
  std::vector<std::unique_ptr<GpuRunner>> runners;
  std::vector<ExecutionBackend*> backends;

  explicit SimCluster(int gpus, RunnerConfig cfg = SmallRunner()) {
    for (int g = 0; g < gpus; ++g) {
      runners.push_back(
          std::make_unique<GpuRunner>(g, cfg, Llama7B(), &cm));
      backends.push_back(runners.back().get());
    }
  }
};

std::vector<TraceRequest> ShortOpenLoop(int n, double rate,
                                        std::int32_t priority_classes = 1,
                                        std::uint64_t seed = 0xC0FFEE) {
  OpenLoopSpec spec;
  spec.rate_rps = rate;
  spec.num_requests = n;
  spec.seed = seed;
  spec.priority_classes = priority_classes;
  spec.lengths.prompt_mu = 3.5;
  spec.lengths.prompt_sigma = 0.7;
  spec.lengths.output_mu = 2.8;
  spec.lengths.output_sigma = 0.5;
  return GenerateOpenLoopLoad(spec);
}

TEST(ServingLoopTest, LightLoadFinishesEverythingWithCleanMetrics) {
  SimCluster cluster(2);
  auto trace = ShortOpenLoop(40, /*rate=*/2.0);
  ServingLoop loop(cluster.backends);
  loop.RunVirtual(trace);
  const ServingMetrics& m = loop.metrics();
  EXPECT_EQ(m.offered, 40);
  EXPECT_EQ(m.finished, 40);
  EXPECT_EQ(m.shed, 0);
  EXPECT_EQ(m.ttft.count(), 40u);
  EXPECT_EQ(m.queue_wait.count(), 40u);
  EXPECT_EQ(m.e2e.count(), 40u);
  EXPECT_GT(m.itl.count(), 0u);
  // Per request: queueing ≤ TTFT ≤ end-to-end, by construction.
  EXPECT_LE(m.queue_wait.mean(), m.ttft.mean());
  EXPECT_LE(m.ttft.p95(), m.e2e.max());
  EXPECT_GT(m.goodput(), 0.0);
  EXPECT_LE(m.goodput(), 1.0);
  EXPECT_EQ(m.total_new_tokens, TotalOutputTokens(trace));
  // Every request streamed exactly its output budget (simulated-tier
  // sequence tags 0, 1, 2, …).
  ASSERT_EQ(loop.streams().size(), 40u);
  for (const auto& [id, stream] : loop.streams()) {
    ASSERT_EQ(stream.size(),
              static_cast<std::size_t>(
                  trace[static_cast<std::size_t>(id)].output_len));
    for (std::size_t t = 0; t < stream.size(); ++t) {
      EXPECT_EQ(stream[t], static_cast<std::int32_t>(t));
    }
  }
  EXPECT_GT(loop.end_time(), 0.0);
}

TEST(ServingLoopTest, VirtualReplayIsBitIdentical) {
  auto trace = ShortOpenLoop(30, /*rate=*/6.0, /*priority_classes=*/2);
  SimCluster c1(2), c2(2);
  ServingLoop l1(c1.backends), l2(c2.backends);
  l1.RunVirtual(trace);
  l2.RunVirtual(trace);
  EXPECT_EQ(l1.streams(), l2.streams());
  EXPECT_EQ(l1.metrics().finished, l2.metrics().finished);
  EXPECT_EQ(l1.metrics().shed, l2.metrics().shed);
  EXPECT_EQ(l1.metrics().good, l2.metrics().good);
  EXPECT_DOUBLE_EQ(l1.metrics().ttft.mean(), l2.metrics().ttft.mean());
  EXPECT_DOUBLE_EQ(l1.metrics().ttft.p95(), l2.metrics().ttft.p95());
  EXPECT_DOUBLE_EQ(l1.metrics().queue_wait.mean(),
                   l2.metrics().queue_wait.mean());
  EXPECT_DOUBLE_EQ(l1.metrics().itl.p95(), l2.metrics().itl.p95());
  EXPECT_DOUBLE_EQ(l1.end_time(), l2.end_time());
}

TEST(ServingLoopTest, OverloadShedsOnlyUnprotectedTraffic) {
  // One tiny GPU against a burst: the door must shed, but never a
  // protected (priority ≥ 1) request.
  RunnerConfig cfg = SmallRunner();
  cfg.max_batch_size = 2;
  SimCluster cluster(1, cfg);
  // Hand-built burst: everything arrives nearly at once, half protected.
  std::vector<SubmitSpec> specs;
  for (int i = 0; i < 40; ++i) {
    SubmitSpec s;
    s.lora = i % 4;
    s.prompt_len = 200;
    s.max_new_tokens = 60;
    s.arrival_time = 0.001 * i;
    s.priority = i % 2;  // odd ids protected
    specs.push_back(s);
  }
  ServingLoopConfig lc;
  lc.slo.ttft_target_s = 0.05;  // tight target → aggressive stale shedding
  lc.shed_slack = 2.0;
  lc.door_capacity = 64;  // overflow out of play: isolate stale shedding
  lc.protected_priority = 1;
  ServingLoop loop(cluster.backends, lc);
  loop.RunVirtual(specs);
  const ServingMetrics& m = loop.metrics();
  EXPECT_EQ(m.offered, 40);
  EXPECT_EQ(m.finished + m.shed, 40);
  EXPECT_GT(m.shed, 0);
  // Every protected request produced a complete stream.
  for (int i = 1; i < 40; i += 2) {
    auto it = loop.streams().find(i);
    ASSERT_NE(it, loop.streams().end()) << "protected request " << i
                                        << " was shed";
    EXPECT_EQ(it->second.size(), 60u);
  }
  // Shedding keeps goodput honest: good ≤ finished < offered.
  EXPECT_LE(m.good, m.finished);
  EXPECT_LT(m.goodput(), 1.0);
}

TEST(ServingLoopTest, DoorBoundSheddingKicksInOnBursts) {
  RunnerConfig cfg = SmallRunner();
  cfg.max_batch_size = 2;
  SimCluster cluster(1, cfg);
  std::vector<SubmitSpec> specs;
  for (int i = 0; i < 24; ++i) {
    SubmitSpec s;
    s.lora = 0;
    s.prompt_len = 300;
    s.max_new_tokens = 80;
    s.arrival_time = 0.0;  // simultaneous burst
    specs.push_back(s);
  }
  ServingLoopConfig lc;
  lc.door_capacity = 4;
  lc.shed_slack = 1e9;  // isolate the overflow path from stale shedding
  lc.protected_priority = 0;  // nobody protected, but nobody stale either
  ServingLoop loop(cluster.backends, lc);
  loop.RunVirtual(specs);
  const ServingMetrics& m = loop.metrics();
  EXPECT_EQ(m.offered, 24);
  // The burst overflows the 4-slot door beyond what admission drains
  // instantly (2-slot batch): some are shed, the rest finish.
  EXPECT_GT(m.shed, 0);
  EXPECT_EQ(m.finished + m.shed, 24);
  EXPECT_GT(m.finished, 0);
}

TEST(ServingLoopTest, PriorityDefersLowClassUnderContention) {
  // Same arrival instant, one backend slot free at a time: high-priority
  // requests must reach the engine first even though they were offered
  // last.
  RunnerConfig cfg = SmallRunner();
  cfg.max_batch_size = 1;
  SimCluster cluster(1, cfg);
  std::vector<SubmitSpec> specs;
  for (int i = 0; i < 6; ++i) {
    SubmitSpec s;
    s.lora = 0;
    s.prompt_len = 100;
    s.max_new_tokens = 20;
    s.arrival_time = 0.0;
    s.priority = i < 3 ? 0 : 1;  // the protected half is offered last
    specs.push_back(s);
  }
  ServingLoopConfig lc;
  lc.shed_slack = 1e9;  // keep everyone; test ordering, not shedding
  ServingLoop loop(cluster.backends, lc);
  loop.RunVirtual(specs);
  const ServingMetrics& m = loop.metrics();
  ASSERT_EQ(m.finished, 6);
  // Request 0 was alone at the door when it arrived, so it went straight
  // in; after that, admission is serial (batch 1) and must take every
  // waiting priority-1 request before returning to the deferred zeros.
  const auto& reqs = loop.requests();
  EXPECT_DOUBLE_EQ(reqs[0].admit_time, 0.0);
  double latest_high = 0.0;
  for (std::size_t i = 3; i < 6; ++i) {
    latest_high = std::max(latest_high, reqs[i].admit_time);
  }
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GT(reqs[i].admit_time, latest_high);
  }
}

TEST(ServingLoopTest, ThreadedModeServesAReplayedTrace) {
  SimCluster cluster(2);
  auto trace = ShortOpenLoop(24, /*rate=*/40.0);
  std::vector<SubmitSpec> specs;
  for (const auto& r : trace) specs.push_back(SpecFromTrace(r));

  ArrivalQueue queue(8);
  TraceSubmitter submitter(specs, /*time_scale=*/0.005);
  ServingLoop loop(cluster.backends);
  submitter.Start(&queue, /*num_threads=*/2);
  loop.RunThreaded(queue);  // returns once the fleet shuts the queue down
  submitter.Join();

  const ServingMetrics& m = loop.metrics();
  EXPECT_EQ(m.offered, 24);
  EXPECT_EQ(m.finished + m.shed, 24);
  EXPECT_EQ(m.finished, 24);  // ample capacity: nothing shed
  EXPECT_EQ(m.ttft.count(), 24u);
  EXPECT_EQ(m.total_new_tokens, TotalOutputTokens(trace));
  EXPECT_GT(loop.end_time(), 0.0);
}

}  // namespace
}  // namespace punica
