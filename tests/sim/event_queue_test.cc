#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace punica {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.Schedule(3.0, [&] { order.push_back(3); });
  eq.Schedule(1.0, [&] { order.push_back(1); });
  eq.Schedule(2.0, [&] { order.push_back(2); });
  eq.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueueTest, FifoTiebreakAtEqualTimes) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  eq.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesNow) {
  EventQueue eq;
  double fired_at = -1.0;
  eq.Schedule(2.0, [&] {
    eq.ScheduleAfter(3.0, [&] { fired_at = eq.now(); });
  });
  eq.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue eq;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) eq.ScheduleAfter(1.0, chain);
  };
  eq.Schedule(0.0, chain);
  eq.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(eq.now(), 4.0);
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue eq;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    eq.Schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
  }
  eq.RunUntil(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(eq.now(), 2.5);
  EXPECT_EQ(eq.pending(), 2u);
  eq.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(eq.now(), 10.0);
}

TEST(EventQueueTest, RunNextReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.RunNext());
  EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeathTest, SchedulingIntoThePastAborts) {
  EventQueue eq;
  eq.Schedule(5.0, [] {});
  eq.RunAll();
  EXPECT_DEATH(eq.Schedule(1.0, [] {}), "past");
}

}  // namespace
}  // namespace punica
