#include "sim/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace punica {
namespace {

TEST(ArrivalsTest, HomogeneousRateMatchesCount) {
  Pcg32 rng(1);
  double rate = 5.0, horizon = 2000.0;
  auto times = PoissonArrivals(rate, horizon, rng);
  // Expected count = rate·horizon = 10000, sd = 100.
  EXPECT_NEAR(static_cast<double>(times.size()), rate * horizon, 500.0);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (double t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, horizon);
  }
}

TEST(ArrivalsTest, ZeroRateProducesNothing) {
  Pcg32 rng(2);
  EXPECT_TRUE(PoissonArrivals(0.0, 100.0, rng).empty());
}

TEST(ArrivalsTest, InterarrivalGapsAreExponential) {
  Pcg32 rng(3);
  double rate = 2.0;
  auto times = PoissonArrivals(rate, 50000.0, rng);
  RunningStat gaps;
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.Add(times[i] - times[i - 1]);
  }
  // Exponential(rate): mean = 1/rate, stddev = 1/rate.
  EXPECT_NEAR(gaps.mean(), 0.5, 0.02);
  EXPECT_NEAR(gaps.stddev(), 0.5, 0.03);
}

TEST(ArrivalsTest, KeyedArrivalsAreDeterministic) {
  auto a = PoissonArrivalsKeyed(4.0, 32, 0xFEED);
  auto b = PoissonArrivalsKeyed(4.0, 32, 0xFEED);
  ASSERT_EQ(a.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
  auto c = PoissonArrivalsKeyed(4.0, 32, 0xFEED + 1);
  EXPECT_NE(a[0], c[0]);
}

TEST(ArrivalsTest, KeyedArrivalsArePrefixStable) {
  // Arrival i is a pure function of (seed, rate, i): extending the trace
  // must not move earlier arrivals.
  auto short_run = PoissonArrivalsKeyed(2.0, 10, 77);
  auto long_run = PoissonArrivalsKeyed(2.0, 100, 77);
  for (std::size_t i = 0; i < short_run.size(); ++i) {
    EXPECT_DOUBLE_EQ(short_run[i], long_run[i]);
  }
}

TEST(ArrivalsTest, KeyedArrivalsIncreaseWithSaneMeanGap) {
  double rate = 8.0;
  auto times = PoissonArrivalsKeyed(rate, 20000, 42);
  RunningStat gaps;
  double prev = 0.0;
  for (double t : times) {
    EXPECT_GT(t, prev);
    gaps.Add(t - prev);
    prev = t;
  }
  EXPECT_NEAR(gaps.mean(), 1.0 / rate, 0.01);
  EXPECT_NEAR(gaps.stddev(), 1.0 / rate, 0.01);
}

TEST(ArrivalsDeathTest, KeyedArrivalsRequirePositiveRate) {
  EXPECT_DEATH(PoissonArrivalsKeyed(0.0, 4, 1), "rate");
}

TEST(ArrivalsTest, ThinningMatchesRateFunction) {
  Pcg32 rng(4);
  double horizon = 10000.0;
  auto rate = [&](double t) { return t < horizon / 2 ? 1.0 : 3.0; };
  auto times = PoissonArrivals(rate, 3.0, horizon, rng);
  auto mid = std::lower_bound(times.begin(), times.end(), horizon / 2);
  double first_half = static_cast<double>(mid - times.begin());
  double second_half = static_cast<double>(times.end() - mid);
  EXPECT_NEAR(first_half, 1.0 * horizon / 2, 300.0);
  EXPECT_NEAR(second_half, 3.0 * horizon / 2, 500.0);
}

TEST(ArrivalsDeathTest, RateAboveBoundAborts) {
  Pcg32 rng(5);
  auto rate = [](double) { return 10.0; };
  EXPECT_DEATH(PoissonArrivals(rate, 1.0, 100.0, rng), "thinning");
}

TEST(RampRateTest, TriangularShape) {
  double horizon = 3600.0, peak = 12.0;
  EXPECT_DOUBLE_EQ(RampRate(0.0, horizon, peak), 0.0);
  EXPECT_DOUBLE_EQ(RampRate(horizon / 2, horizon, peak), peak);
  EXPECT_DOUBLE_EQ(RampRate(horizon / 4, horizon, peak), peak / 2);
  EXPECT_DOUBLE_EQ(RampRate(3 * horizon / 4, horizon, peak), peak / 2);
  EXPECT_DOUBLE_EQ(RampRate(horizon, horizon, peak), 0.0);
  EXPECT_DOUBLE_EQ(RampRate(-1.0, horizon, peak), 0.0);
}

TEST(RampRateTest, NeverExceedsPeak) {
  for (double t = 0.0; t <= 3600.0; t += 37.0) {
    double r = RampRate(t, 3600.0, 10.0);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 10.0);
  }
}

TEST(ArrivalsTest, RampedProcessPeaksInTheMiddle) {
  Pcg32 rng(6);
  double horizon = 36000.0, peak = 2.0;
  auto times = PoissonArrivals(
      [&](double t) { return RampRate(t, horizon, peak); }, peak, horizon,
      rng);
  // Count arrivals per third: middle third should dominate.
  std::size_t thirds[3] = {0, 0, 0};
  for (double t : times) {
    ++thirds[std::min(2, static_cast<int>(t / (horizon / 3)))];
  }
  EXPECT_GT(thirds[1], thirds[0]);
  EXPECT_GT(thirds[1], thirds[2]);
}

}  // namespace
}  // namespace punica
