#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace punica {
namespace {

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.37 - 5.0;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(LatencyRecorderTest, MomentsAndQuantilesMatchPrimitives) {
  LatencyRecorder r;
  std::vector<double> xs = {0.9, 0.1, 0.5, 0.3, 0.7};
  for (double x : xs) r.Add(x);
  EXPECT_EQ(r.count(), xs.size());
  EXPECT_NEAR(r.mean(), 0.5, 1e-12);
  EXPECT_EQ(r.min(), 0.1);
  EXPECT_EQ(r.max(), 0.9);
  EXPECT_NEAR(r.sum(), 2.5, 1e-12);
  // Quantile must be exactly util/stats Percentile over the samples — one
  // tail definition everywhere.
  EXPECT_DOUBLE_EQ(r.p50(), Percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(r.p95(), Percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(r.Quantile(25.0), Percentile(xs, 25.0));
}

TEST(LatencyRecorderTest, EmptyQuantileIsZeroNotAbort) {
  LatencyRecorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.p95(), 0.0);
  EXPECT_EQ(r.mean(), 0.0);
  EXPECT_EQ(r.max(), 0.0);
}

TEST(LatencyRecorderTest, MergeEqualsSequential) {
  LatencyRecorder a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = 0.01 * i;
    (i % 3 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_DOUBLE_EQ(a.p95(), all.p95());
  EXPECT_EQ(a.max(), all.max());
}

TEST(LatencyRecorderTest, HistogramHoldsEverySample) {
  LatencyRecorder r;
  for (int i = 0; i < 40; ++i) r.Add(0.025 * i);
  Histogram h = r.ToHistogram(0.0, 1.0, 10);
  EXPECT_EQ(h.total(), 40u);
  EXPECT_EQ(h.bucket(0), 4u);  // 0.000..0.075 → 0.000,0.025,0.050,0.075
}

TEST(PercentileTest, KnownValues) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 5.5);
  EXPECT_NEAR(Percentile(xs, 90), 9.1, 1e-12);
}

TEST(PercentileTest, SingleElement) {
  std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 99), 42.0);
}

TEST(PercentileTest, UnsortedInput) {
  std::vector<double> xs = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 5.0);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);    // bucket 0
  h.Add(1.99);   // bucket 0
  h.Add(2.0);    // bucket 1
  h.Add(9.99);   // bucket 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(HistogramTest, SparklineNonEmpty) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(3.5);
  std::string s = h.Sparkline();
  EXPECT_FALSE(s.empty());
}

TEST(TimeSeriesTest, WindowReduction) {
  TimeSeries ts;
  ts.Add(0.5, 10.0);
  ts.Add(0.9, 20.0);
  ts.Add(1.5, 30.0);
  ts.Add(2.9, 40.0);
  auto rows = ts.Windows(1.0, 3.0);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].sum, 30.0);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_DOUBLE_EQ(rows[0].mean, 15.0);
  EXPECT_DOUBLE_EQ(rows[1].sum, 30.0);
  EXPECT_DOUBLE_EQ(rows[2].sum, 40.0);
}

TEST(TimeSeriesTest, OutOfHorizonDropped) {
  TimeSeries ts;
  ts.Add(-1.0, 5.0);
  ts.Add(10.0, 5.0);
  auto rows = ts.Windows(1.0, 2.0);
  EXPECT_EQ(rows[0].count, 0u);
  EXPECT_EQ(rows[1].count, 0u);
}

TEST(TimeSeriesTest, EmptyWindowsAreZero) {
  TimeSeries ts;
  auto rows = ts.Windows(60.0, 3600.0);
  EXPECT_EQ(rows.size(), 60u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.count, 0u);
    EXPECT_EQ(r.mean, 0.0);
  }
}

}  // namespace
}  // namespace punica
