#include "util/small_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace punica {
namespace {

TEST(SmallBufferTest, StaysInlineUpToCapacity) {
  SmallBuffer<std::int32_t, 8> buf;
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.is_inline());
  buf.Resize(8);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_TRUE(buf.is_inline());
  std::iota(buf.begin(), buf.end(), 0);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(buf[i], static_cast<std::int32_t>(i));
  }
}

TEST(SmallBufferTest, SpillsToHeapPastCapacity) {
  SmallBuffer<float, 4> buf(9);
  EXPECT_EQ(buf.size(), 9u);
  EXPECT_FALSE(buf.is_inline());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<float>(i) * 0.5f;
  }
  EXPECT_EQ(buf.end() - buf.begin(),
            static_cast<std::ptrdiff_t>(buf.size()));
}

TEST(SmallBufferTest, HeapAllocationIsReusedNotShrunk) {
  // The scratch-reuse contract: once spilled, growing again within the
  // high-water mark must not reallocate (pointer stability across the
  // shrink/regrow cycle a steady-state serving loop performs).
  SmallBuffer<double, 2> buf;
  buf.Resize(100);
  const double* big = buf.data();
  buf.Resize(50);
  EXPECT_EQ(buf.data(), big);
  EXPECT_EQ(buf.size(), 50u);
  buf.Resize(100);
  EXPECT_EQ(buf.data(), big);
  buf.Resize(1);  // back under the inline capacity
  EXPECT_TRUE(buf.is_inline());
  buf.Resize(80);  // spills again — still within the high-water mark
  EXPECT_EQ(buf.data(), big);
}

TEST(SmallBufferTest, InlineCapacityIsStatic) {
  EXPECT_EQ((SmallBuffer<int, 64>::inline_capacity()), 64u);
}

}  // namespace
}  // namespace punica
