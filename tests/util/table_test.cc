#include "util/table.h"

#include <gtest/gtest.h>

namespace punica {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, ColumnsAligned) {
  Table t({"a", "bbbb"});
  t.AddRow({"xxxxxx", "1"});
  std::string out = t.Render();
  // Each line should have the same display width up to trailing content.
  auto first_nl = out.find('\n');
  auto second_nl = out.find('\n', first_nl + 1);
  std::string header = out.substr(0, first_nl);
  std::string sep = out.substr(first_nl + 1, second_nl - first_nl - 1);
  EXPECT_EQ(sep.find_first_not_of("- "), std::string::npos);
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "PUNICA_CHECK");
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(FormatSeconds(37e-6), "37.0 µs");
  EXPECT_EQ(FormatSeconds(1.35e-3), "1.35 ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
  EXPECT_EQ(FormatSeconds(0.0), "0.0 µs");
}

TEST(FormatTest, NegativeSeconds) {
  EXPECT_EQ(FormatSeconds(-1.35e-3), "-1.35 ms");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(262144), "256.0 KB");
  EXPECT_EQ(FormatBytes(16.8 * 1024 * 1024), "16.8 MB");
}

TEST(FormatTest, Flops) {
  EXPECT_EQ(FormatFlops(312e12), "312.00 TFLOP/s");
  EXPECT_EQ(FormatFlops(1.5e9), "1.50 GFLOP/s");
}

TEST(FormatTest, Double) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1044.0, 0), "1044");
}

}  // namespace
}  // namespace punica
