#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "util/compute_context.h"

namespace punica {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<int> hits(1, 0);
  pool.ParallelFor(1, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  EXPECT_EQ(hits[0], 1);
}

TEST(ThreadPoolTest, GrainKeepsSmallRangesInline) {
  // n <= grain must run as a single fn(0, n) call on the calling thread.
  ThreadPool pool(4);
  int calls = 0;
  std::int64_t seen_lo = -1, seen_hi = -1;
  pool.ParallelFor(100, 128, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 0);
  EXPECT_EQ(seen_hi, 100);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.ParallelFor(8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // A nested region must not deadlock waiting for the same workers.
      pool.ParallelFor(10, 1, [&](std::int64_t nlo, std::int64_t nhi) {
        total.fetch_add(nhi - nlo);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 200; ++job) {
    std::vector<int> out(64, 0);
    pool.ParallelFor(64, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        out[static_cast<std::size_t>(i)] = job;
      }
    });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64 * job);
  }
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeWholeRegions) {
  // Two engines over one model may step from different threads; regions on
  // the shared pool must never interleave chunks (which would skip or
  // double-run work).
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr int kPerCaller = 500;
  std::vector<std::atomic<int>> hits(kCallers * kPerCaller);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int repeat = 0; repeat < 20; ++repeat) {
        pool.ParallelFor(kPerCaller, 1, [&](std::int64_t lo,
                                            std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            hits[static_cast<std::size_t>(c * kPerCaller + i)].fetch_add(1);
          }
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 20);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ComputeContextTest, ExplicitThreadCountWins) {
  EXPECT_EQ(ComputeContext::ResolveThreadCount(3), 3);
  ComputeContext ctx({.num_threads = 2});
  EXPECT_EQ(ctx.num_threads(), 2);
}

TEST(ComputeContextTest, EnvFallbackAndClamping) {
  // Restore the ambient value afterwards — CI pins PUNICA_THREADS for the
  // whole test process and later tests must still see it.
  const char* prior = std::getenv("PUNICA_THREADS");
  std::string saved = prior != nullptr ? prior : "";

  setenv("PUNICA_THREADS", "5", 1);
  EXPECT_EQ(ComputeContext::ResolveThreadCount(0), 5);
  // Explicit request still beats the env.
  EXPECT_EQ(ComputeContext::ResolveThreadCount(2), 2);
  setenv("PUNICA_THREADS", "0", 1);  // invalid → hardware fallback
  EXPECT_GE(ComputeContext::ResolveThreadCount(0), 1);
  setenv("PUNICA_THREADS", "999999", 1);
  EXPECT_EQ(ComputeContext::ResolveThreadCount(0),
            ComputeContext::kMaxThreads);
  unsetenv("PUNICA_THREADS");
  EXPECT_GE(ComputeContext::ResolveThreadCount(0), 1);

  if (prior != nullptr) setenv("PUNICA_THREADS", saved.c_str(), 1);
}

TEST(ComputeContextTest, DefaultIsSharedAndUsable) {
  const ComputeContext& a = ComputeContext::Default();
  const ComputeContext& b = ComputeContext::Default();
  EXPECT_EQ(&a, &b);
  std::atomic<std::int64_t> sum{0};
  a.ParallelFor(100, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

}  // namespace
}  // namespace punica
