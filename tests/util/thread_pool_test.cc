#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/compute_context.h"

namespace punica {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<int> hits(1, 0);
  pool.ParallelFor(1, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  EXPECT_EQ(hits[0], 1);
}

TEST(ThreadPoolTest, GrainKeepsSmallRangesInline) {
  // n <= grain must run as a single fn(0, n) call on the calling thread.
  ThreadPool pool(4);
  int calls = 0;
  std::int64_t seen_lo = -1, seen_hi = -1;
  pool.ParallelFor(100, 128, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 0);
  EXPECT_EQ(seen_hi, 100);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.ParallelFor(8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // A nested region must not deadlock waiting for the same workers.
      pool.ParallelFor(10, 1, [&](std::int64_t nlo, std::int64_t nhi) {
        total.fetch_add(nhi - nlo);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 200; ++job) {
    std::vector<int> out(64, 0);
    pool.ParallelFor(64, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        out[static_cast<std::size_t>(i)] = job;
      }
    });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64 * job);
  }
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeWholeRegions) {
  // Two engines over one model may step from different threads; regions on
  // the shared pool must never interleave chunks (which would skip or
  // double-run work).
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr int kPerCaller = 500;
  std::vector<std::atomic<int>> hits(kCallers * kPerCaller);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int repeat = 0; repeat < 20; ++repeat) {
        pool.ParallelFor(kPerCaller, 1, [&](std::int64_t lo,
                                            std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            hits[static_cast<std::size_t>(c * kPerCaller + i)].fetch_add(1);
          }
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 20);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- Worker groups (tensor parallelism substrate) ---

TEST(ThreadPoolGroupTest, PartitionWidthsCoverThePool) {
  ThreadPool pool(5);
  pool.Partition(2);
  EXPECT_EQ(pool.num_groups(), 2);
  EXPECT_EQ(pool.group_width(0) + pool.group_width(1), 5);
  // Balanced: widths differ by at most one, group 0 gets the remainder.
  EXPECT_EQ(pool.group_width(0), 3);
  EXPECT_EQ(pool.group_width(1), 2);
  pool.Partition(8);  // k > T: trailing groups are virtual (width 0)
  EXPECT_EQ(pool.num_groups(), 8);
  int total = 0;
  for (int g = 0; g < 8; ++g) total += pool.group_width(g);
  EXPECT_EQ(total, 5);
  EXPECT_EQ(pool.group_width(7), 0);
  pool.Partition(1);
  EXPECT_EQ(pool.group_width(0), 5);
}

TEST(ThreadPoolGroupTest, RunGroupTasksRunsEveryGroupExactlyOnce) {
  ThreadPool pool(4);
  for (int k : {1, 2, 3, 4, 7}) {
    std::vector<std::atomic<int>> ran(static_cast<std::size_t>(k));
    pool.RunGroupTasks(k, [&](int g) {
      ran[static_cast<std::size_t>(g)].fetch_add(1);
    });
    for (int g = 0; g < k; ++g) EXPECT_EQ(ran[g].load(), 1) << "k=" << k;
  }
}

TEST(ThreadPoolGroupTest, GroupRegionsCoverEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  pool.Partition(2);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(2 * kN);
  pool.RunGroupTasks(2, [&](int g) {
    pool.ParallelFor(kN, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(g * kN + i)].fetch_add(1);
      }
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolGroupTest, GroupIsolationUnderNestedParallelFor) {
  // The satellite-f contract: a ParallelFor issued from inside group g's
  // task must execute only on group g's threads — never steal a sibling
  // group's workers. Record every executing thread per group across many
  // rounds of oversized regions and assert the sets are disjoint.
  ThreadPool pool(4);
  pool.Partition(2);
  std::mutex mu;
  std::array<std::set<std::thread::id>, 2> thread_sets;
  for (int round = 0; round < 50; ++round) {
    pool.RunGroupTasks(2, [&](int g) {
      pool.ParallelFor(256, 1, [&](std::int64_t, std::int64_t) {
        std::lock_guard<std::mutex> lock(mu);
        thread_sets[static_cast<std::size_t>(g)].insert(
            std::this_thread::get_id());
      });
    });
  }
  for (std::thread::id id : thread_sets[0]) {
    EXPECT_EQ(thread_sets[1].count(id), 0u)
        << "a thread executed regions for both groups";
  }
  // Sanity: each group used no more threads than its width.
  EXPECT_LE(thread_sets[0].size(), static_cast<std::size_t>(2));
  EXPECT_LE(thread_sets[1].size(), static_cast<std::size_t>(2));
}

TEST(ThreadPoolGroupTest, DoublyNestedRegionsInsideTasksRunInline) {
  // Region inside a region inside a task: innermost must inline, nothing
  // deadlocks, every index is still covered exactly once.
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.RunGroupTasks(2, [&](int) {
    pool.ParallelFor(8, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        pool.ParallelFor(10, 1, [&](std::int64_t nlo, std::int64_t nhi) {
          total.fetch_add(nhi - nlo);
        });
      }
    });
  });
  EXPECT_EQ(total.load(), 2 * 80);
}

TEST(ThreadPoolGroupTest, RootParallelForOnPartitionedPoolCoversRange) {
  // A root-level region on a partitioned pool decomposes into per-group
  // spans; every index must still be visited exactly once.
  ThreadPool pool(4);
  pool.Partition(3);
  std::vector<std::atomic<int>> hits(997);  // prime: uneven spans
  pool.ParallelFor(997, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolGroupTest, RepartitionBetweenJobsIsSafe) {
  ThreadPool pool(4);
  for (int k : {1, 2, 4, 2, 3, 1}) {
    pool.Partition(k);
    std::vector<std::atomic<int>> hits(500);
    pool.RunGroupTasks(k, [&](int g) {
      if (g != 0) return;  // one writer group, others idle
      pool.ParallelFor(500, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "k=" << k;
  }
}

TEST(ThreadPoolGroupTest, Width1PoolRunsEverythingSerially) {
  ThreadPool pool(1);
  std::vector<int> ran(4, 0);
  pool.RunGroupTasks(4, [&](int g) {
    pool.ParallelFor(10, 1, [&](std::int64_t lo, std::int64_t hi) {
      ran[static_cast<std::size_t>(g)] += static_cast<int>(hi - lo);
    });
  });
  for (int g = 0; g < 4; ++g) EXPECT_EQ(ran[g], 10);
}

TEST(ComputeContextTest, SplitViewsPinGroupsAndReportWidths) {
  ComputeContext ctx({.num_threads = 4});
  auto views = ctx.Split(2);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_FALSE(ctx.is_group_view());
  int total = 0;
  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(views[r]->is_group_view());
    EXPECT_EQ(views[r]->group_index(), r);
    total += views[r]->num_threads();
  }
  EXPECT_EQ(total, 4);
  // A view's ParallelFor covers its range exactly once.
  std::vector<std::atomic<int>> hits(300);
  views[1]->ParallelFor(300, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ComputeContextTest, RunGroupTasksWithViewsKeepsRanksConcurrent) {
  // The TP execution shape: RunGroupTasks(k) with rank r's kernels on view
  // r. All ranks' writes land, each exactly once.
  ComputeContext ctx({.num_threads = 4});
  auto views = ctx.Split(2);
  constexpr int kN = 400;
  std::vector<std::atomic<int>> hits(2 * kN);
  ctx.RunGroupTasks(2, [&](int r) {
    views[static_cast<std::size_t>(r)]->ParallelFor(
        kN, 1, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            hits[static_cast<std::size_t>(r * kN + i)].fetch_add(1);
          }
        });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ComputeContextTest, ExplicitThreadCountWins) {
  EXPECT_EQ(ComputeContext::ResolveThreadCount(3), 3);
  ComputeContext ctx({.num_threads = 2});
  EXPECT_EQ(ctx.num_threads(), 2);
}

TEST(ComputeContextTest, EnvFallbackAndClamping) {
  // Restore the ambient value afterwards — CI pins PUNICA_THREADS for the
  // whole test process and later tests must still see it.
  const char* prior = std::getenv("PUNICA_THREADS");
  std::string saved = prior != nullptr ? prior : "";

  setenv("PUNICA_THREADS", "5", 1);
  EXPECT_EQ(ComputeContext::ResolveThreadCount(0), 5);
  // Explicit request still beats the env.
  EXPECT_EQ(ComputeContext::ResolveThreadCount(2), 2);
  setenv("PUNICA_THREADS", "0", 1);  // invalid → hardware fallback
  EXPECT_GE(ComputeContext::ResolveThreadCount(0), 1);
  setenv("PUNICA_THREADS", "999999", 1);
  EXPECT_EQ(ComputeContext::ResolveThreadCount(0),
            ComputeContext::kMaxThreads);
  unsetenv("PUNICA_THREADS");
  EXPECT_GE(ComputeContext::ResolveThreadCount(0), 1);

  if (prior != nullptr) setenv("PUNICA_THREADS", saved.c_str(), 1);
}

TEST(ComputeContextTest, DefaultIsSharedAndUsable) {
  const ComputeContext& a = ComputeContext::Default();
  const ComputeContext& b = ComputeContext::Default();
  EXPECT_EQ(&a, &b);
  std::atomic<std::int64_t> sum{0};
  a.ParallelFor(100, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

}  // namespace
}  // namespace punica
