#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.h"

namespace punica {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Pcg32 rng(5);
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Pcg32 rng(9);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Pcg32 rng(17);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Pcg32 rng(21);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.Add(rng.NextGaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.01);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Pcg32 rng(31);
  double rate = 2.5;
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) {
    double x = rng.NextExponential(rate);
    EXPECT_GE(x, 0.0);
    stat.Add(x);
  }
  EXPECT_NEAR(stat.mean(), 1.0 / rate, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Pcg32 rng(41);
  std::vector<int> xs(100);
  for (int i = 0; i < 100; ++i) xs[static_cast<std::size_t>(i)] = i;
  auto copy = xs;
  rng.Shuffle(std::span<int>(xs));
  EXPECT_NE(xs, copy);  // astronomically unlikely to be identity
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, copy);
}

TEST(RngTest, RandomGaussianVectorScale) {
  Pcg32 rng(51);
  auto v = RandomGaussianVector(100000, 0.5f, rng);
  RunningStat stat;
  for (float x : v) stat.Add(x);
  EXPECT_NEAR(stat.stddev(), 0.5, 0.01);
}

}  // namespace
}  // namespace punica
