// The unified serving API end to end on the numeric tier: Frontend →
// ClusterDriver → Scheduler → EngineBackend → Engine. The same stack that
// runs cluster-scale simulations must stream *real* token ids to users,
// bit-identical to driving an Engine directly, with migration and
// continuous batching happening underneath.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/frontend.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "runtime/engine_backend.h"
#include "sched/cluster.h"

namespace punica {
namespace {

class UnifiedServingTest : public ::testing::Test {
 protected:
  UnifiedServingTest() : model_(TinyLlama(), 2024) {
    model_.AddLora(0, 8, 1);
    model_.AddLora(1, 8, 2);
    model_.AddLora(2, 4, 3);
  }

  std::vector<std::int32_t> Solo(LoraId lora,
                                 std::vector<std::int32_t> prompt,
                                 int tokens) {
    Engine solo(&model_, model_.MakeKvConfig(256), {.max_batch_size = 1});
    RequestHandle id = solo.AddRequest({.lora = lora,
                                        .prompt_tokens = std::move(prompt),
                                        .max_new_tokens = tokens});
    while (solo.HasWork()) solo.Step();
    return *solo.Output(id);
  }

  void BuildCluster(int num_backends, std::int32_t kv_pages = 256) {
    for (int g = 0; g < num_backends; ++g) {
      engines_.push_back(std::make_unique<Engine>(
          &model_, model_.MakeKvConfig(kv_pages),
          EngineConfig{.max_batch_size = 4}));
      backends_.push_back(
          std::make_unique<EngineBackend>(g, engines_.back().get()));
    }
    std::vector<ExecutionBackend*> raw;
    for (auto& b : backends_) raw.push_back(b.get());
    driver_ = std::make_unique<ClusterDriver>(raw);
    Frontend::SchedulerApi api;
    api.submit = [this](ServingRequest* req) {
      driver_->SubmitExternal(req);
    };
    api.cancel = [this](std::int64_t id) {
      return driver_->CancelExternal(id);
    };
    frontend_ = std::make_unique<Frontend>(0, api, /*id_base=*/500);
    driver_->SetEmissionCallback(
        [this](const StepResult& result, double now) {
          frontend_->OnStep(result, now);
        });
  }

  LlamaModel model_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<EngineBackend>> backends_;
  std::unique_ptr<ClusterDriver> driver_;
  std::unique_ptr<Frontend> frontend_;
  std::map<std::int64_t, std::vector<std::int32_t>> streamed_;
};

TEST_F(UnifiedServingTest, FrontendStreamsRealTokensBitIdentical) {
  BuildCluster(2);
  struct Req {
    LoraId lora;
    std::vector<std::int32_t> prompt;
    int tokens;
  };
  std::vector<Req> reqs = {
      {0, {17, 3, 42, 7}, 10}, {1, {99, 5}, 8},    {2, {8, 8, 8}, 12},
      {-1, {1, 2, 3}, 6},      {0, {64, 32, 16}, 9},
  };
  std::vector<RequestHandle> handles;
  for (const auto& r : reqs) {
    handles.push_back(frontend_->Submit({.lora = r.lora,
                                         .prompt_tokens = r.prompt,
                                         .max_new_tokens = r.tokens}));
  }
  driver_->Run();
  EXPECT_EQ(driver_->stats().finished_requests,
            static_cast<std::int64_t>(reqs.size()));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    TokenStream* stream = frontend_->Stream(handles[i]);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->state(), StreamEnd::kFinished);
    EXPECT_EQ(stream->DrainAll(),
              Solo(reqs[i].lora, reqs[i].prompt, reqs[i].tokens))
        << "request " << i << " streamed different tokens than a solo run";
  }
}

TEST_F(UnifiedServingTest, SubscribedStreamsMatchAndSelfFree) {
  BuildCluster(2);
  std::vector<RequestHandle> handles;
  struct Req {
    LoraId lora;
    std::vector<std::int32_t> prompt;
    int tokens;
  };
  std::vector<Req> reqs = {{0, {5, 6, 7}, 7}, {1, {9}, 9}, {2, {4, 2}, 5}};
  for (const auto& r : reqs) {
    RequestHandle h = frontend_->Submit({.lora = r.lora,
                                         .prompt_tokens = r.prompt,
                                         .max_new_tokens = r.tokens});
    handles.push_back(h);
    ASSERT_TRUE(frontend_->Subscribe(
        h, [this, h](std::int32_t token, double) {
          streamed_[h.id()].push_back(token);
        }));
  }
  driver_->Run();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(streamed_[handles[i].id()],
              Solo(reqs[i].lora, reqs[i].prompt, reqs[i].tokens));
  }
  EXPECT_EQ(frontend_->live_sessions(), 0u);  // all self-freed on finish
  EXPECT_EQ(frontend_->total_submitted(), reqs.size());
}

TEST_F(UnifiedServingTest, KvPressureMigrationUnderTheDriver) {
  // A tight per-backend page pool forces driver-orchestrated migration
  // while requests stream; outputs must still be exact.
  BuildCluster(2, /*kv_pages=*/10);  // 10 pages × 16 slots
  struct Req {
    LoraId lora;
    std::vector<std::int32_t> prompt;
    int tokens;
  };
  std::vector<Req> reqs = {
      {0, {1, 2, 3, 4, 5, 6, 7, 8}, 40},
      {1, {9, 8, 7, 6, 5, 4, 3, 2}, 40},
      {2, {11, 12, 13}, 40},
      {0, {21, 22, 23, 24}, 40},
  };
  std::vector<RequestHandle> handles;
  for (const auto& r : reqs) {
    handles.push_back(frontend_->Submit({.lora = r.lora,
                                         .prompt_tokens = r.prompt,
                                         .max_new_tokens = r.tokens}));
  }
  driver_->Run();
  EXPECT_EQ(driver_->stats().finished_requests, 4);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    TokenStream* stream = frontend_->Stream(handles[i]);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->DrainAll(),
              Solo(reqs[i].lora, reqs[i].prompt, reqs[i].tokens))
        << "request " << i;
  }
}

TEST_F(UnifiedServingTest, DisconnectMidGenerationFreesEverything) {
  BuildCluster(1);
  RequestHandle keep = frontend_->Submit(
      {.lora = 0, .prompt_tokens = {1, 2}, .max_new_tokens = 6});
  RequestHandle drop = frontend_->Submit(
      {.lora = 1, .prompt_tokens = {3, 4}, .max_new_tokens = 50});
  driver_->Run(0.003);  // a few steps in
  frontend_->Disconnect(drop);
  EXPECT_EQ(frontend_->Stream(drop), nullptr);
  driver_->Run();
  TokenStream* stream = frontend_->Stream(keep);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->state(), StreamEnd::kFinished);
  EXPECT_EQ(stream->DrainAll(), Solo(0, {1, 2}, 6));
  // The dropped request left no engine-side residue.
  EXPECT_EQ(backends_[0]->working_set_size(), 0);
  EXPECT_FALSE(engines_[0]->HasWork());
}

}  // namespace
}  // namespace punica
