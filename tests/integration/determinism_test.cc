// Thread-count determinism regression: the compute substrate must produce
// bit-identical token streams and request snapshots for any thread count
// (PUNICA_THREADS=1 vs 4 and the hardware default), because migration and
// consolidation equivalence rest on engines being exact replicas of each
// other. Runs the unified-serving scenario (frontend → driver → scheduler →
// EngineBackend → Engine, with KvCache-pressure migration) once per context
// and compares everything.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/frontend.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "runtime/engine_backend.h"
#include "sched/cluster.h"
#include "serving/serving_loop.h"
#include "sim/arrivals.h"
#include "tensor/simd.h"
#include "util/compute_context.h"

namespace punica {
namespace {

struct Req {
  LoraId lora;
  std::vector<std::int32_t> prompt;
  int tokens;
};

const std::vector<Req>& Scenario() {
  // Tight page pools force driver-orchestrated migration mid-stream, so the
  // comparison covers prefill, decode, re-prefill and consolidation paths.
  // The last three requests share a tenant system prompt, so the sweep also
  // covers prefix-cache hits: forked pages, CoW boundary copies and
  // suffix-only prefills must be bit-identical at every thread count.
  static const std::vector<Req> reqs = {
      {0, {1, 2, 3, 4, 5, 6, 7, 8}, 24},
      {1, {9, 8, 7, 6, 5, 4, 3, 2}, 24},
      {2, {11, 12, 13}, 20},
      {-1, {21, 22, 23, 24}, 16},
      {0, {42}, 12},
      {1, {70, 71, 72, 73, 74, 75, 76, 77, 78, 79, 80, 81}, 10},
      {1, {70, 71, 72, 73, 74, 75, 76, 77, 78, 79, 80, 81}, 10},
      {2, {70, 71, 72, 73, 74, 75, 76, 77, 78, 79, 91, 92, 93}, 8},
  };
  return reqs;
}

/// Builds the full numeric serving stack on `ctx` and runs the scenario,
/// returning every request's streamed tokens. `prefix_cache` toggles the
/// shared-prefix KV cache on the engines; `hit_tokens` (optional)
/// accumulates the cache hits actually realized; `max_step_tokens` chunks
/// prefills under a per-step token budget (0 = unchunked); `dtype` selects
/// the backbone weight storage (quantized backbones must uphold the same
/// bit-identity contract as f16).
std::vector<std::vector<std::int32_t>> RunScenario(
    const ComputeContext& ctx, bool prefix_cache = true,
    std::int64_t* hit_tokens = nullptr, std::int64_t max_step_tokens = 0,
    WeightDtype dtype = WeightDtype::kF16) {
  LlamaConfig config = TinyLlama();
  config.weight_dtype = dtype;
  LlamaModel model(config, 2024, &ctx);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  model.AddLora(2, 4, 3);

  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::unique_ptr<EngineBackend>> backends;
  std::vector<ExecutionBackend*> raw;
  for (int g = 0; g < 2; ++g) {
    engines.push_back(std::make_unique<Engine>(
        &model, model.MakeKvConfig(/*num_pages=*/10),
        EngineConfig{.max_batch_size = 4,
                     .max_step_tokens = max_step_tokens,
                     .enable_prefix_cache = prefix_cache}));
    backends.push_back(std::make_unique<EngineBackend>(g, engines.back().get()));
    raw.push_back(backends.back().get());
    // The plumbing contract: every backend over this backbone reports the
    // one pool the model was built with.
    EXPECT_EQ(&backends.back()->context(), &ctx);
    EXPECT_EQ(&engines.back()->context(), &ctx);
  }
  ClusterDriver driver(raw);
  Frontend::SchedulerApi api;
  api.submit = [&](ServingRequest* req) { driver.SubmitExternal(req); };
  api.cancel = [&](std::int64_t id) { return driver.CancelExternal(id); };
  Frontend frontend(0, api, /*id_base=*/500);
  driver.SetEmissionCallback([&](const StepResult& result, double now) {
    frontend.OnStep(result, now);
  });

  std::vector<RequestHandle> handles;
  for (const auto& r : Scenario()) {
    handles.push_back(frontend.Submit({.lora = r.lora,
                                       .prompt_tokens = r.prompt,
                                       .max_new_tokens = r.tokens}));
  }
  driver.Run();

  std::vector<std::vector<std::int32_t>> streams;
  for (RequestHandle h : handles) {
    TokenStream* stream = frontend.Stream(h);
    EXPECT_NE(stream, nullptr);
    streams.push_back(stream != nullptr ? stream->DrainAll()
                                        : std::vector<std::int32_t>{});
  }
  if (hit_tokens != nullptr) {
    for (const auto& e : engines) {
      *hit_tokens += e->prefix_cache_stats().hit_tokens;
    }
  }
  return streams;
}

/// The thread-count sweep: runs the scenario under PUNICA_THREADS=1, 4 and
/// the hardware default and asserts every stream is bit-identical.
void ExpectStreamsBitIdenticalAcrossThreadCounts() {
  // PUNICA_THREADS resolution is part of the contract under test: build
  // contexts via the env var, restoring the ambient value afterwards (CI
  // pins it for the whole test process).
  const char* prior = std::getenv("PUNICA_THREADS");
  std::string saved = prior != nullptr ? prior : "";
  setenv("PUNICA_THREADS", "1", 1);
  ComputeContext ctx1;
  setenv("PUNICA_THREADS", "4", 1);
  ComputeContext ctx4;
  unsetenv("PUNICA_THREADS");
  ComputeContext ctx_hw;  // hardware_concurrency default
  if (prior != nullptr) setenv("PUNICA_THREADS", saved.c_str(), 1);
  ASSERT_EQ(ctx1.num_threads(), 1);
  ASSERT_EQ(ctx4.num_threads(), 4);

  auto streams1 = RunScenario(ctx1);
  auto streams4 = RunScenario(ctx4);
  auto streams_hw = RunScenario(ctx_hw);

  ASSERT_EQ(streams1.size(), Scenario().size());
  for (std::size_t i = 0; i < streams1.size(); ++i) {
    EXPECT_FALSE(streams1[i].empty()) << "request " << i << " emitted nothing";
    EXPECT_EQ(streams1[i], streams4[i])
        << "request " << i << " diverged between 1 and 4 threads";
    EXPECT_EQ(streams1[i], streams_hw[i])
        << "request " << i << " diverged between 1 and hardware threads";
  }
}

TEST(DeterminismTest, TokenStreamsBitIdenticalAcrossThreadCounts) {
  // Ambient dispatch path (PUNICA_SIMD / cpuid), i.e. whatever this process
  // actually serves with.
  ExpectStreamsBitIdenticalAcrossThreadCounts();
}

TEST(DeterminismTest, TokenStreamsBitIdenticalAcrossThreadCountsScalarSimd) {
  ScopedSimdLevel guard(SimdLevel::kScalar);
  ExpectStreamsBitIdenticalAcrossThreadCounts();
}

TEST(DeterminismTest, TokenStreamsBitIdenticalAcrossThreadCountsVectorSimd) {
  // The vectorized kernels must uphold the same contract: vector-across-
  // columns keeps each element's reduction order fixed, so thread count
  // still never changes a bit. Every compiled-and-runnable vector level
  // (avx2, avx512) is swept; skipped (not silently passed) when none is in
  // the build — the Release CI job compiles them in.
  bool any = false;
  for (int l = 1; l < kNumSimdLevels; ++l) {
    auto level = static_cast<SimdLevel>(l);
    if (!SimdLevelAvailable(level)) continue;
    any = true;
    SCOPED_TRACE(SimdLevelName(level));
    ScopedSimdLevel guard(level);
    ExpectStreamsBitIdenticalAcrossThreadCounts();
  }
  if (!any) GTEST_SKIP() << "no vector SIMD available";
}

TEST(DeterminismTest, QuantStreamsBitIdenticalAcrossThreadCountsAllLevels) {
  // The quantized backbones inherit the full determinism contract: for
  // every (weight dtype, dispatch path), streams are bit-identical at any
  // thread count. Cross-dtype and cross-path streams MAY differ — the
  // contract is per (dtype, path), matching the f16 per-path contract.
  for (WeightDtype dtype : {WeightDtype::kQ8_0, WeightDtype::kQ4_0}) {
    for (int l = 0; l < kNumSimdLevels; ++l) {
      auto level = static_cast<SimdLevel>(l);
      if (!SimdLevelAvailable(level)) continue;
      SCOPED_TRACE(std::string(WeightDtypeName(dtype)) + "/" +
                   SimdLevelName(level));
      ScopedSimdLevel guard(level);
      ComputeContext ctx1({.num_threads = 1});
      ComputeContext ctx4({.num_threads = 4});
      auto s1 = RunScenario(ctx1, /*prefix_cache=*/true, nullptr, 0, dtype);
      auto s4 = RunScenario(ctx4, /*prefix_cache=*/true, nullptr, 0, dtype);
      ASSERT_EQ(s1.size(), Scenario().size());
      for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_FALSE(s1[i].empty()) << "request " << i << " emitted nothing";
        EXPECT_EQ(s1[i], s4[i])
            << "request " << i << " diverged between 1 and 4 threads";
      }
    }
  }
}

/// The shared-prefix contract: a prefix-hit stream must be bit-identical to
/// the cold-start stream — cached pages hold exactly the bits a cold
/// prefill would write, and suffix-only prefills change no reduction
/// order. Checked at several thread counts; the scenario's repeated tenant
/// prompts guarantee the enabled run actually takes the hit path.
void ExpectPrefixHitStreamsEqualColdStreams() {
  for (int threads : {1, 4}) {
    ComputeContext ctx({.num_threads = threads});
    std::int64_t hits = 0;
    auto with_cache = RunScenario(ctx, /*prefix_cache=*/true, &hits);
    auto cold = RunScenario(ctx, /*prefix_cache=*/false);
    EXPECT_GT(hits, 0) << "scenario exercised no prefix hits";
    ASSERT_EQ(with_cache.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(with_cache[i], cold[i])
          << "request " << i << " diverged between prefix-hit and "
          << "cold-start runs at " << threads << " threads";
    }
  }
}

TEST(DeterminismTest, PrefixHitStreamsBitIdenticalToColdStart) {
  ExpectPrefixHitStreamsEqualColdStreams();
}

TEST(DeterminismTest, PrefixHitStreamsBitIdenticalToColdStartScalarSimd) {
  ScopedSimdLevel guard(SimdLevel::kScalar);
  ExpectPrefixHitStreamsEqualColdStreams();
}

TEST(DeterminismTest, PrefixHitStreamsBitIdenticalToColdStartVectorSimd) {
  if (BestSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no vector SIMD available";
  }
  ScopedSimdLevel guard(BestSimdLevel());
  ExpectPrefixHitStreamsEqualColdStreams();
}

/// The chunked-prefill contract: a step token budget moves invocation
/// boundaries but never K/V bits or reduction orders, so chunked streams
/// must be bit-identical to unchunked streams at any budget and any thread
/// count. Budgets 16 and 128 chunk the scenario's longer prompts (and, at
/// 16, force multi-step prefills with decodes interleaved); ∞ (0) is the
/// reference.
void ExpectChunkedStreamsEqualUnchunked() {
  for (int threads : {1, 4}) {
    ComputeContext ctx({.num_threads = threads});
    auto unchunked = RunScenario(ctx, /*prefix_cache=*/true, nullptr,
                                 /*max_step_tokens=*/0);
    for (std::int64_t budget : {16, 128}) {
      auto chunked = RunScenario(ctx, /*prefix_cache=*/true, nullptr,
                                 budget);
      ASSERT_EQ(chunked.size(), unchunked.size());
      for (std::size_t i = 0; i < unchunked.size(); ++i) {
        EXPECT_EQ(chunked[i], unchunked[i])
            << "request " << i << " diverged at budget " << budget << ", "
            << threads << " threads";
      }
    }
  }
}

TEST(DeterminismTest, ChunkedPrefillStreamsBitIdenticalToUnchunked) {
  ExpectChunkedStreamsEqualUnchunked();
}

TEST(DeterminismTest, ChunkedPrefillStreamsBitIdenticalToUnchunkedScalarSimd) {
  ScopedSimdLevel guard(SimdLevel::kScalar);
  ExpectChunkedStreamsEqualUnchunked();
}

TEST(DeterminismTest, ChunkedPrefillStreamsBitIdenticalToUnchunkedVectorSimd) {
  if (BestSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no vector SIMD available";
  }
  ScopedSimdLevel guard(BestSimdLevel());
  ExpectChunkedStreamsEqualUnchunked();
}

TEST(DeterminismTest, StreamsBitIdenticalAcrossSplitKvSizes) {
  // The split-KV contract: attention math is fixed-block with an ascending
  // fold, so the split count is pure scheduling — streams must be
  // bit-identical across attn_split ∈ {heuristic, forced 1, forced 3} at
  // every thread count, within each SIMD dispatch path.
  for (int l = 0; l < kNumSimdLevels; ++l) {
    auto level = static_cast<SimdLevel>(l);
    if (!SimdLevelAvailable(level)) continue;
    ScopedSimdLevel guard(level);
    std::vector<std::vector<std::int32_t>> reference;
    for (int threads : {1, 4}) {
      for (int split : {0, 1, 3}) {
        SCOPED_TRACE(std::string(SimdLevelName(level)) + "/threads=" +
                     std::to_string(threads) + "/split=" +
                     std::to_string(split));
        ComputeContext ctx({.num_threads = threads, .attn_split = split});
        auto streams = RunScenario(ctx);
        ASSERT_EQ(streams.size(), Scenario().size());
        if (reference.empty()) {
          for (const auto& s : streams) EXPECT_FALSE(s.empty());
          reference = streams;
          continue;
        }
        for (std::size_t i = 0; i < streams.size(); ++i) {
          EXPECT_EQ(streams[i], reference[i])
              << "request " << i << " diverged from the first configuration";
        }
      }
    }
  }
}

/// Open-loop serving determinism: the virtual-time ServingLoop replays a
/// keyed Poisson arrival schedule against numeric EngineBackends. Both the
/// token streams AND every SLO metric (TTFT/queue/e2e/ITL samples, goodput
/// counters) must be bit-identical for any thread count — virtual time is
/// event-driven, so wall-clock speed must never leak into a measurement.
struct OpenLoopServingRun {
  std::map<std::int64_t, std::vector<std::int32_t>> streams;
  ServingMetrics metrics;
};

OpenLoopServingRun RunOpenLoopServing(const ComputeContext& ctx) {
  LlamaModel model(TinyLlama(), 2024, &ctx);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  model.AddLora(2, 4, 3);

  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::unique_ptr<EngineBackend>> backends;
  std::vector<ExecutionBackend*> raw;
  for (int g = 0; g < 2; ++g) {
    engines.push_back(std::make_unique<Engine>(
        &model, model.MakeKvConfig(/*num_pages=*/10),
        EngineConfig{.max_batch_size = 4}));
    backends.push_back(
        std::make_unique<EngineBackend>(g, engines.back().get()));
    raw.push_back(backends.back().get());
  }

  ServingLoopConfig cfg;
  cfg.slo = {.ttft_target_s = 0.5, .itl_target_s = 0.25};
  ServingLoop loop(raw, cfg);

  // Bursty arrivals (mean gap 5 ms ≪ the 10 ms engine step) so the door
  // actually queues and defers — the paths whose ordering must not depend
  // on the compute substrate. Alternating priorities exercise the
  // class-ordered admission sort.
  std::vector<double> arrivals =
      PoissonArrivalsKeyed(200.0, Scenario().size(), /*seed=*/42);
  std::vector<SubmitSpec> specs;
  for (std::size_t i = 0; i < Scenario().size(); ++i) {
    const Req& r = Scenario()[i];
    specs.push_back({.lora = r.lora,
                     .prompt_tokens = r.prompt,
                     .max_new_tokens = r.tokens,
                     .arrival_time = arrivals[i],
                     .priority = static_cast<std::int32_t>(i % 2)});
  }
  loop.RunVirtual(specs);
  return {loop.streams(), loop.metrics()};
}

void ExpectSameSamples(const LatencyRecorder& a, const LatencyRecorder& b,
                       const char* what) {
  ASSERT_EQ(a.count(), b.count()) << what;
  for (std::size_t i = 0; i < a.count(); ++i) {
    EXPECT_EQ(a.samples()[i], b.samples()[i]) << what << " sample " << i;
  }
}

void ExpectOpenLoopServingDeterministicAcrossThreadCounts() {
  ComputeContext ctx1({.num_threads = 1});
  ComputeContext ctx4({.num_threads = 4});
  OpenLoopServingRun a = RunOpenLoopServing(ctx1);
  OpenLoopServingRun b = RunOpenLoopServing(ctx4);

  ASSERT_EQ(a.streams.size(), Scenario().size());
  EXPECT_EQ(a.streams, b.streams) << "token streams diverged";
  EXPECT_EQ(a.metrics.offered, b.metrics.offered);
  EXPECT_EQ(a.metrics.finished, b.metrics.finished);
  EXPECT_EQ(a.metrics.shed, b.metrics.shed);
  EXPECT_EQ(a.metrics.good, b.metrics.good);
  EXPECT_EQ(a.metrics.total_new_tokens, b.metrics.total_new_tokens);
  ExpectSameSamples(a.metrics.ttft, b.metrics.ttft, "ttft");
  ExpectSameSamples(a.metrics.queue_wait, b.metrics.queue_wait, "queue_wait");
  ExpectSameSamples(a.metrics.e2e, b.metrics.e2e, "e2e");
  ExpectSameSamples(a.metrics.itl, b.metrics.itl, "itl");
  // The workload actually serves: everything finishes on the virtual clock.
  EXPECT_EQ(a.metrics.finished, a.metrics.offered);
  EXPECT_GT(a.metrics.ttft.count(), 0u);
}

TEST(DeterminismTest, OpenLoopServingDeterministicAcrossThreadCounts) {
  ExpectOpenLoopServingDeterministicAcrossThreadCounts();
}

TEST(DeterminismTest, OpenLoopServingDeterministicScalarSimd) {
  ScopedSimdLevel guard(SimdLevel::kScalar);
  ExpectOpenLoopServingDeterministicAcrossThreadCounts();
}

TEST(DeterminismTest, OpenLoopServingDeterministicVectorSimd) {
  if (BestSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no vector SIMD available";
  }
  ScopedSimdLevel guard(BestSimdLevel());
  ExpectOpenLoopServingDeterministicAcrossThreadCounts();
}

/// TinyLlama with 1:1 query/KV heads so every swept TP degree (2, 4)
/// divides heads, KV heads and ffn evenly.
LlamaConfig TinyLlamaTp() {
  LlamaConfig c = TinyLlama();
  c.name = "tiny-llama-tp";
  c.num_kv_heads = 4;
  return c;
}

/// RunScenario's tensor-parallel sibling: the same unified serving stack
/// (frontend → driver → migration → EngineBackend → Engine) over a model
/// sharded at `tp`, executed either as the serial rank loop or concurrently
/// on disjoint worker groups. LoRA-active by default: requests carry the
/// scenario's adapter ids (ranks 8/8/4, sharded over the ranks at
/// registration), so the sweeps cover the per-rank SGMV shrink/expand and
/// the adapter deltas folding through the all-reduce — `with_lora=false`
/// reproduces the backbone-only runs.
std::vector<std::vector<std::int32_t>> RunTpScenario(
    const ComputeContext& ctx, int tp, bool concurrent,
    WeightDtype dtype = WeightDtype::kF16, bool with_lora = true) {
  LlamaConfig config = TinyLlamaTp();
  config.weight_dtype = dtype;
  LlamaModel model(config, 2024, &ctx, tp, concurrent);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  model.AddLora(2, 4, 3);

  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::unique_ptr<EngineBackend>> backends;
  std::vector<ExecutionBackend*> raw;
  for (int g = 0; g < 2; ++g) {
    engines.push_back(std::make_unique<Engine>(
        &model, model.MakeKvConfig(/*num_pages=*/10),
        EngineConfig{.max_batch_size = 4}));
    backends.push_back(
        std::make_unique<EngineBackend>(g, engines.back().get()));
    raw.push_back(backends.back().get());
  }
  ClusterDriver driver(raw);
  Frontend::SchedulerApi api;
  api.submit = [&](ServingRequest* req) { driver.SubmitExternal(req); };
  api.cancel = [&](std::int64_t id) { return driver.CancelExternal(id); };
  Frontend frontend(0, api, /*id_base=*/500);
  driver.SetEmissionCallback([&](const StepResult& result, double now) {
    frontend.OnStep(result, now);
  });

  std::vector<RequestHandle> handles;
  for (const auto& r : Scenario()) {
    handles.push_back(frontend.Submit({.lora = with_lora ? r.lora : -1,
                                       .prompt_tokens = r.prompt,
                                       .max_new_tokens = r.tokens}));
  }
  driver.Run();

  std::vector<std::vector<std::int32_t>> streams;
  for (RequestHandle h : handles) {
    TokenStream* stream = frontend.Stream(h);
    EXPECT_NE(stream, nullptr);
    streams.push_back(stream != nullptr ? stream->DrainAll()
                                        : std::vector<std::int32_t>{});
  }
  return streams;
}

TEST(DeterminismTest, TpStreamsBitIdenticalSerialVsConcurrent) {
  // The tentpole contract end-to-end, now LoRA-active: for every (weight
  // dtype, dispatch path, tp degree), the concurrent worker-group execution
  // streams bit-identically to the serial rank loop at every thread count —
  // the fixed-rank-order all-reduce makes rank scheduling unobservable.
  // Requests carry real adapters (ranks 8/8/4 sharded over the ranks), so
  // each rank's SGMV shrink/expand and the row-parallel adapter deltas
  // inherit the same contract as the dense partials.
  for (WeightDtype dtype : {WeightDtype::kF16, WeightDtype::kQ8_0}) {
    for (int l = 0; l < kNumSimdLevels; ++l) {
      auto level = static_cast<SimdLevel>(l);
      if (!SimdLevelAvailable(level)) continue;
      ScopedSimdLevel guard(level);
      for (int tp : {2, 4}) {
        SCOPED_TRACE(std::string(WeightDtypeName(dtype)) + "/" +
                     SimdLevelName(level) + "/tp" + std::to_string(tp));
        ComputeContext ctx1({.num_threads = 1});
        ComputeContext ctx4({.num_threads = 4});
        ComputeContext ctx_hw;  // ambient PUNICA_THREADS / hw default
        auto reference = RunTpScenario(ctx1, tp, /*concurrent=*/false, dtype);
        ASSERT_EQ(reference.size(), Scenario().size());
        std::vector<std::pair<const char*,
                              std::vector<std::vector<std::int32_t>>>>
            runs;
        runs.emplace_back("serial/4t",
                          RunTpScenario(ctx4, tp, false, dtype));
        runs.emplace_back("concurrent/1t",
                          RunTpScenario(ctx1, tp, true, dtype));
        runs.emplace_back("concurrent/4t",
                          RunTpScenario(ctx4, tp, true, dtype));
        runs.emplace_back("concurrent/hw",
                          RunTpScenario(ctx_hw, tp, true, dtype));
        for (const auto& [what, streams] : runs) {
          ASSERT_EQ(streams.size(), reference.size()) << what;
          for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_FALSE(reference[i].empty())
                << "request " << i << " emitted nothing";
            EXPECT_EQ(streams[i], reference[i])
                << "request " << i << " diverged in " << what;
          }
        }
      }
    }
  }
}

TEST(DeterminismTest, TpStreamsMatchSingleGpuExecution) {
  // TP vs tp=1 is an *argmax-level* equivalence, not a bit-level one: the
  // all-reduce at the O/Down seams regroups the fp32 accumulation, so
  // logits differ in ulps while the shift-tied LM head's well-separated
  // argmax keeps greedy streams identical. LoRA-active: adapters stay f16,
  // so their shards are exact at every seam and add NO per-dtype exemption
  // — the streams below carry real adapter segments. q8_0 is compared at
  // tp=2 only: at tp=4 this config's O projection row-slices the dense
  // BACKBONE at offset 16, mid-block for 32-wide quant groups, so shard
  // quantization legitimately differs from whole-matrix quantization (see
  // ShardLayer's alignment note) — an exemption of the quantized backbone,
  // not of the LoRA path.
  for (int threads : {1, 4}) {
    ComputeContext ctx({.num_threads = threads});
    auto single_f16 = RunTpScenario(ctx, 1, false, WeightDtype::kF16);
    for (int tp : {2, 4}) {
      auto streams = RunTpScenario(ctx, tp, true, WeightDtype::kF16);
      ASSERT_EQ(streams.size(), single_f16.size());
      for (std::size_t i = 0; i < streams.size(); ++i) {
        EXPECT_EQ(streams[i], single_f16[i])
            << "f16 tp=" << tp << " request " << i << " diverged from "
            << "single-GPU at " << threads << " threads";
      }
    }
    auto single_q8 = RunTpScenario(ctx, 1, false, WeightDtype::kQ8_0);
    auto q8_tp2 = RunTpScenario(ctx, 2, true, WeightDtype::kQ8_0);
    ASSERT_EQ(q8_tp2.size(), single_q8.size());
    for (std::size_t i = 0; i < q8_tp2.size(); ++i) {
      EXPECT_EQ(q8_tp2[i], single_q8[i])
          << "q8_0 tp=2 request " << i << " diverged from single-GPU at "
          << threads << " threads";
    }
  }
}

/// Steps an engine `steps` times, then cancels the request and returns its
/// snapshot — the migration payload whose bits must not depend on threads.
RequestSnapshot SnapshotAfterSteps(const ComputeContext& ctx, int steps) {
  LlamaModel model(TinyLlama(), 7, &ctx);
  model.AddLora(0, 8, 1);
  Engine engine(&model, model.MakeKvConfig(64));
  RequestHandle h = engine.AddRequest(
      {.lora = 0, .prompt_tokens = {5, 6, 7, 8}, .max_new_tokens = 32});
  for (int s = 0; s < steps; ++s) engine.Step();
  auto snap = engine.Cancel(h);
  EXPECT_TRUE(snap.has_value());
  return snap.value_or(RequestSnapshot{});
}

TEST(DeterminismTest, SnapshotsBitIdenticalAcrossThreadCounts) {
  ComputeContext ctx1({.num_threads = 1});
  ComputeContext ctx4({.num_threads = 4});
  RequestSnapshot a = SnapshotAfterSteps(ctx1, 6);
  RequestSnapshot b = SnapshotAfterSteps(ctx4, 6);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.prompt_len, b.prompt_len);
  EXPECT_EQ(a.generated_len, b.generated_len);
  EXPECT_EQ(a.max_new_tokens, b.max_new_tokens);
  EXPECT_EQ(a.eos_token, b.eos_token);
}

TEST(DeterminismTest, ModelLogitsBitIdenticalAcrossThreadCounts) {
  // Kernel-level check one layer up from gemm/sgmv: full forward logits.
  auto logits_for = [](const ComputeContext& ctx) {
    LlamaModel model(TinyLlama(), 99, &ctx);
    model.AddLora(3, 8, 4);
    PagedKvCache kv(model.MakeKvConfig(64));
    SeqId seq = kv.CreateSequence();
    kv.Extend(seq, 5);
    ModelBatch batch = ModelBatch::Build({{.seq = seq,
                                           .lora = 3,
                                           .num_tokens = 5,
                                           .pos_offset = 0,
                                           .is_prefill = true}});
    std::vector<std::int32_t> ids = {10, 20, 30, 40, 50};
    return model.Forward(batch, ids, kv);
  };
  ComputeContext ctx1({.num_threads = 1});
  ComputeContext ctx3({.num_threads = 3});
  Tensor<float> a = logits_for(ctx1);
  Tensor<float> b = logits_for(ctx3);
  ASSERT_EQ(a.numel(), b.numel());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "logit " << i;
  }
}

}  // namespace
}  // namespace punica
