// End-to-end numeric serving: the tiny Llama model driven through Engine's
// continuous-batching loop. The core guarantee under test is the paper's
// central claim, observed on real numerics: batching requests of *different*
// LoRA models changes neither any request's output tokens nor determinism.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "model/llama.h"
#include "runtime/engine.h"
#include "util/rng.h"

namespace punica {
namespace {

struct TestHarness {
  TestHarness() : model(TinyLlama(), /*seed=*/2024) {
    model.AddLora(0, 8, 1);
    model.AddLora(1, 8, 2);
    model.AddLora(2, 4, 3);
  }

  Engine MakeEngine(int max_batch = 8) {
    EngineConfig cfg;
    cfg.max_batch_size = max_batch;
    return Engine(&model, model.MakeKvConfig(512), cfg);
  }

  std::vector<std::int32_t> SoloGenerate(LoraId lora,
                                         std::vector<std::int32_t> prompt,
                                         int tokens) {
    Engine engine = MakeEngine(1);
    RequestHandle id = engine.AddRequest({.lora = lora,
                                          .prompt_tokens = std::move(prompt),
                                          .max_new_tokens = tokens});
    while (engine.HasWork()) engine.Step();
    return *engine.Output(id);
  }

  LlamaModel model;
};

TEST(EndToEndTest, SingleRequestRunsToCompletion) {
  TestHarness h;
  Engine engine = h.MakeEngine();
  RequestHandle id = engine.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 6});
  int steps = 0;
  while (engine.HasWork()) {
    auto r = engine.Step();
    EXPECT_GE(r.batch_size, 1);
    ++steps;
  }
  EXPECT_EQ(steps, 6);  // 1 prefill + 5 decodes
  ASSERT_NE(engine.Output(id), nullptr);
  EXPECT_EQ(engine.Output(id)->size(), 6u);
}

TEST(EndToEndTest, CrossLoraBatchingPreservesOutputs) {
  TestHarness h;
  struct Req {
    LoraId lora;
    std::vector<std::int32_t> prompt;
    int tokens;
  };
  std::vector<Req> reqs = {
      {0, {5, 6, 7}, 8},   {1, {9, 10}, 8},      {2, {11, 12, 13, 14}, 8},
      {0, {20, 21}, 8},    {-1, {30, 31, 32}, 8}, {1, {40}, 8},
  };
  // Reference: each request alone.
  std::vector<std::vector<std::int32_t>> solo;
  for (const auto& r : reqs) {
    solo.push_back(h.SoloGenerate(r.lora, r.prompt, r.tokens));
  }
  // All together in one engine, admitted up front.
  Engine engine = h.MakeEngine(8);
  std::vector<RequestHandle> ids;
  for (const auto& r : reqs) {
    ids.push_back(engine.AddRequest({.lora = r.lora,
                                     .prompt_tokens = r.prompt,
                                     .max_new_tokens = r.tokens}));
  }
  while (engine.HasWork()) {
    auto result = engine.Step();
    // Cross-LoRA batching: once prefills drain, batches mix several models.
    EXPECT_LE(result.num_segments, result.batch_size);
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(*engine.Output(ids[i]), solo[i]) << "request " << i;
  }
}

TEST(EndToEndTest, SegmentsGroupSameLoraRequests) {
  TestHarness h;
  Engine engine = h.MakeEngine(8);
  // Four requests over two LoRA models, interleaved admission order.
  engine.AddRequest({.lora = 0, .prompt_tokens = {1, 2}, .max_new_tokens = 10});
  engine.AddRequest({.lora = 1, .prompt_tokens = {3, 4}, .max_new_tokens = 10});
  engine.AddRequest({.lora = 0, .prompt_tokens = {5, 6}, .max_new_tokens = 10});
  engine.AddRequest({.lora = 1, .prompt_tokens = {7, 8}, .max_new_tokens = 10});
  // Drain the prefills (one per step).
  for (int i = 0; i < 4; ++i) engine.Step();
  // Pure-decode batch of 4 rows over 2 models → exactly 2 SGMV segments.
  auto r = engine.Step();
  EXPECT_EQ(r.batch_size, 4);
  EXPECT_EQ(r.prefill_requests, 0);
  EXPECT_EQ(r.num_segments, 2);
}

TEST(EndToEndTest, ContinuousBatchingAdmitsMidFlight) {
  TestHarness h;
  Engine engine = h.MakeEngine(4);
  RequestHandle a = engine.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 12});
  auto solo_a = h.SoloGenerate(0, {1, 2, 3}, 12);
  // Run a few steps, then admit another request mid-flight.
  for (int i = 0; i < 4; ++i) engine.Step();
  RequestHandle b = engine.AddRequest(
      {.lora = 1, .prompt_tokens = {9, 9, 9}, .max_new_tokens = 5});
  auto solo_b = h.SoloGenerate(1, {9, 9, 9}, 5);
  while (engine.HasWork()) engine.Step();
  EXPECT_EQ(*engine.Output(a), solo_a);  // unperturbed by the joiner
  EXPECT_EQ(*engine.Output(b), solo_b);
}

TEST(EndToEndTest, EngineWideEosStopsEarly) {
  TestHarness h;
  // Find what the model emits, then set EOS to the first token that
  // differs from the opener (streams may repeat a token) so the request
  // stops exactly there — through the engine-wide default.
  auto free_run = h.SoloGenerate(0, {7, 7}, 6);
  std::size_t stop_at = 1;
  while (stop_at < free_run.size() && free_run[stop_at] == free_run[0]) {
    ++stop_at;
  }
  ASSERT_LT(stop_at, free_run.size());
  EngineConfig cfg;
  cfg.max_batch_size = 4;
  cfg.eos_token = free_run[stop_at];
  Engine engine(&h.model, h.model.MakeKvConfig(256), cfg);
  RequestHandle id = engine.AddRequest(
      {.lora = 0, .prompt_tokens = {7, 7}, .max_new_tokens = 6});
  while (engine.HasWork()) engine.Step();
  EXPECT_EQ(engine.Output(id)->size(), stop_at + 1);
  EXPECT_EQ(engine.Output(id)->back(), free_run[stop_at]);
}

TEST(EndToEndTest, FcfsQueueDrainsEverything) {
  TestHarness h;
  Engine engine = h.MakeEngine(3);
  Pcg32 rng(55);
  std::vector<SubmitSpec> queue;
  for (int i = 0; i < 12; ++i) {
    SubmitSpec spec;
    spec.lora = static_cast<LoraId>(rng.NextBounded(3));
    for (int j = 0; j < 2 + static_cast<int>(rng.NextBounded(4)); ++j) {
      spec.prompt_tokens.push_back(
          static_cast<std::int32_t>(rng.NextBounded(200)));
    }
    spec.max_new_tokens = 3 + static_cast<std::int32_t>(rng.NextBounded(6));
    queue.push_back(std::move(spec));
  }
  std::size_t next = 0;
  std::size_t finished = 0;
  int guard = 0;
  while (finished < queue.size()) {
    while (next < queue.size() && engine.CanAdmit()) {
      engine.AddRequest(queue[next]);
      ++next;
    }
    auto r = engine.Step();
    finished += r.finished.size();
    ASSERT_LT(++guard, 1000) << "engine stopped making progress";
  }
  EXPECT_FALSE(engine.HasWork());
}

TEST(EndToEndTest, KvPagesFullyReleased) {
  TestHarness h;
  Engine engine = h.MakeEngine(4);
  std::int32_t before = engine.kv_free_pages();
  engine.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3, 4, 5}, .max_new_tokens = 8});
  engine.AddRequest({.lora = 1, .prompt_tokens = {1, 2}, .max_new_tokens = 4});
  while (engine.HasWork()) engine.Step();
  // Finished requests leave their prompt prefixes cached by design, but
  // every held page must be reclaimable — no leaked references.
  EXPECT_EQ(engine.AvailablePages(), before);
}

TEST(EndToEndTest, KvPagesFullyReleasedWithoutPrefixCache) {
  TestHarness h;
  Engine engine(&h.model, h.model.MakeKvConfig(64, 4),
                EngineConfig{.enable_prefix_cache = false});
  std::int32_t before = engine.kv_free_pages();
  engine.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3, 4, 5}, .max_new_tokens = 8});
  engine.AddRequest({.lora = 1, .prompt_tokens = {1, 2}, .max_new_tokens = 4});
  while (engine.HasWork()) engine.Step();
  EXPECT_EQ(engine.kv_free_pages(), before);  // no page leaks at all
}

TEST(EndToEndTest, DeterministicAcrossEngines) {
  TestHarness h;
  auto run = [&] {
    Engine engine = h.MakeEngine(4);
    std::vector<RequestHandle> ids;
    ids.push_back(engine.AddRequest(
        {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 7}));
    ids.push_back(engine.AddRequest(
        {.lora = 1, .prompt_tokens = {4, 5}, .max_new_tokens = 7}));
    ids.push_back(engine.AddRequest(
        {.lora = 2, .prompt_tokens = {6}, .max_new_tokens = 7}));
    while (engine.HasWork()) engine.Step();
    std::vector<std::vector<std::int32_t>> outs;
    for (auto id : ids) outs.push_back(*engine.Output(id));
    return outs;
  };
  EXPECT_EQ(run(), run());
}

TEST(EndToEndDeathTest, AdmissionBeyondBatchAborts) {
  TestHarness h;
  Engine engine = h.MakeEngine(1);
  engine.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 4});
  EXPECT_DEATH(engine.AddRequest(
                   {.lora = 1, .prompt_tokens = {2}, .max_new_tokens = 4}),
               "working set full");
}

}  // namespace
}  // namespace punica
