// Migration correctness on real numerics (paper §5.3): cancelling a request
// mid-generation and re-adding it to another GPU (engine) with
// prompt+generated recomputation must reproduce exactly the token stream of
// an uninterrupted run. This is the property that makes evict+re-add a safe
// scheduling primitive — asserted both at the Engine level and through the
// unified Scheduler/ExecutionBackend path.
#include <gtest/gtest.h>

#include <vector>

#include "model/llama.h"
#include "runtime/engine.h"
#include "runtime/engine_backend.h"
#include "sched/scheduler.h"

namespace punica {
namespace {

struct Harness {
  Harness() : model(TinyLlama4L(), 777) {
    model.AddLora(0, 8, 10);
    model.AddLora(1, 8, 20);
  }

  Engine MakeEngine(int max_batch = 8) {
    EngineConfig cfg;
    cfg.max_batch_size = max_batch;
    return Engine(&model, model.MakeKvConfig(512), cfg);
  }

  std::vector<std::int32_t> Uninterrupted(LoraId lora,
                                          std::vector<std::int32_t> prompt,
                                          int tokens) {
    Engine e = MakeEngine(1);
    RequestHandle id = e.AddRequest({.lora = lora,
                                     .prompt_tokens = std::move(prompt),
                                     .max_new_tokens = tokens});
    while (e.HasWork()) e.Step();
    return *e.Output(id);
  }

  LlamaModel model;
};

TEST(MigrationTest, SnapshotCarriesState) {
  Harness h;
  Engine e = h.MakeEngine();
  RequestHandle id = e.AddRequest(
      {.lora = 0, .prompt_tokens = {3, 1, 4}, .max_new_tokens = 10});
  for (int i = 0; i < 4; ++i) e.Step();
  auto snap = e.Cancel(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->lora, 0);
  EXPECT_EQ(snap->prompt, (std::vector<std::int32_t>{3, 1, 4}));
  EXPECT_EQ(snap->generated.size(), 4u);
  EXPECT_EQ(snap->prompt_len, 3);
  EXPECT_EQ(snap->generated_len, 4);
  EXPECT_EQ(snap->max_new_tokens, 10);
  EXPECT_FALSE(e.HasWork());
}

TEST(MigrationTest, CancelUnknownReturnsEmpty) {
  Harness h;
  Engine e = h.MakeEngine();
  EXPECT_FALSE(e.Cancel(1234).has_value());
}

class MigrationPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(MigrationPointSweep, MigratedStreamEqualsUninterrupted) {
  int migrate_after = GetParam();
  Harness h;
  const std::vector<std::int32_t> prompt = {11, 7, 5, 2};
  const int total = 12;
  auto expected = h.Uninterrupted(0, prompt, total);

  // Source GPU runs `migrate_after` steps.
  Engine source = h.MakeEngine();
  RequestHandle id = source.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = total});
  for (int i = 0; i < migrate_after; ++i) source.Step();
  auto snap = source.Cancel(id);
  ASSERT_TRUE(snap.has_value());

  // Destination GPU re-prefills prompt + generated and finishes.
  Engine dest = h.MakeEngine();
  RequestHandle id2 = dest.AddMigrated(*snap);
  while (dest.HasWork()) dest.Step();

  EXPECT_EQ(*dest.Output(id2), expected)
      << "migration after step " << migrate_after << " changed the stream";
}

INSTANTIATE_TEST_SUITE_P(AfterSteps, MigrationPointSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 11));

TEST(MigrationTest, DoubleMigration) {
  Harness h;
  const std::vector<std::int32_t> prompt = {9, 9, 1};
  const int total = 10;
  auto expected = h.Uninterrupted(1, prompt, total);

  Engine a = h.MakeEngine();
  RequestHandle id = a.AddRequest(
      {.lora = 1, .prompt_tokens = prompt, .max_new_tokens = total});
  for (int i = 0; i < 3; ++i) a.Step();
  auto snap1 = a.Cancel(id);
  ASSERT_TRUE(snap1.has_value());

  Engine b = h.MakeEngine();
  RequestHandle id_b = b.AddMigrated(*snap1);
  for (int i = 0; i < 3; ++i) b.Step();
  auto snap2 = b.Cancel(id_b);
  ASSERT_TRUE(snap2.has_value());
  EXPECT_GT(snap2->generated.size(), snap1->generated.size());

  Engine c = h.MakeEngine();
  RequestHandle id_c = c.AddMigrated(*snap2);
  while (c.HasWork()) c.Step();
  EXPECT_EQ(*c.Output(id_c), expected);
}

TEST(MigrationTest, MigrationIntoBusyEngine) {
  // The destination already serves other LoRA requests; the migrated
  // request joins the mixed batch and its stream is still exact.
  Harness h;
  const std::vector<std::int32_t> prompt = {4, 8, 15};
  const int total = 9;
  auto expected = h.Uninterrupted(0, prompt, total);

  Engine source = h.MakeEngine();
  RequestHandle id = source.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = total});
  for (int i = 0; i < 4; ++i) source.Step();
  auto snap = source.Cancel(id);
  ASSERT_TRUE(snap.has_value());

  Engine dest = h.MakeEngine();
  dest.AddRequest(
      {.lora = 1, .prompt_tokens = {16, 23, 42}, .max_new_tokens = 15});
  for (int i = 0; i < 3; ++i) dest.Step();  // busy mid-flight
  RequestHandle id2 = dest.AddMigrated(*snap);
  while (dest.HasWork()) dest.Step();
  EXPECT_EQ(*dest.Output(id2), expected);
}

TEST(MigrationTest, SourceKvReleasedOnCancel) {
  Harness h;
  Engine e = h.MakeEngine();
  std::int32_t before = e.kv_free_pages();
  RequestHandle id = e.AddRequest({.lora = 0,
                                   .prompt_tokens = {1, 2, 3, 4, 5, 6, 7, 8},
                                   .max_new_tokens = 20});
  for (int i = 0; i < 5; ++i) e.Step();
  EXPECT_LT(e.kv_free_pages(), before);
  e.Cancel(id);
  // The evict half of migration releases the request's references; the
  // computed chain stays registered as a cached prefix (so a bounce-back
  // rebuild is cheap), but every held page must remain reclaimable.
  EXPECT_EQ(e.AvailablePages(), before);
  // (7, not 8: a hit always leaves at least one token to prefill so the
  // model emits the next-token logits.)
  EXPECT_EQ(e.PrefixHitTokens(0,
                              std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7,
                                                        8},
                              {}),
            7);
}

// --- Scheduler-level migration over numeric backends (unified API) ---

TEST(SchedulerMigrationTest, ConsolidationMoveIsBitIdentical) {
  // A request is cancelled on one numeric backend and resumed on another
  // *through the Scheduler* (the consolidation move — the same
  // Cancel/Admit primitive KV-pressure migration uses). Its final output
  // must be bit-identical to an unmigrated run.
  Harness h;
  const std::vector<std::int32_t> prompt = {11, 7, 5, 2};
  const int total = 12;
  auto expected = h.Uninterrupted(0, prompt, total);

  Engine e0 = h.MakeEngine();
  Engine e1 = h.MakeEngine();
  EngineBackend b0(0, &e0);
  EngineBackend b1(1, &e1);
  Scheduler sched({&b0, &b1});

  // The target lands on backend 1 (empty cluster → highest UUID).
  ServingRequest target = ServingRequest::FromSpec(
      100, {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = total});
  ASSERT_EQ(sched.Submit(&target, 0.0, /*exclude_gpu=*/1), 0);

  // Two other tenants keep backend 1 busier than backend 0.
  ServingRequest other1 = ServingRequest::FromSpec(
      101, {.lora = 1, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 30});
  ServingRequest other2 = ServingRequest::FromSpec(
      102, {.lora = 1, .prompt_tokens = {4, 5}, .max_new_tokens = 30});
  b1.Admit(&other1, 0.0);
  b1.Admit(&other2, 0.0);

  // Run the target partway on its source backend.
  for (int i = 0; i < 5; ++i) b0.Step(0.0);
  ASSERT_EQ(target.generated, 5);

  // Consolidation: backend 0 (load 1) donates its newest request to
  // backend 1 (load 2) through the scheduler's Cancel + Admit path.
  std::int64_t migrations = 0;
  ASSERT_EQ(sched.ConsolidateOnce(1.0, &migrations), 1);
  EXPECT_EQ(migrations, 1);
  EXPECT_EQ(target.migrations, 1);
  EXPECT_EQ(b0.working_set_size(), 0);
  ASSERT_EQ(b1.Find(target.id), &target);

  // Drain the destination; the migrated stream must be exact.
  while (b1.HasAnyWork()) b1.Step(2.0);
  EXPECT_EQ(target.phase, RequestPhase::kFinished);
  EXPECT_EQ(target.generated_tokens, expected)
      << "scheduler-level migration changed the stream";
}

TEST(SchedulerMigrationTest, MigrationPreservesResolvedEos) {
  // A request that inherited the source engine's engine-wide EOS must keep
  // that stop condition when migrated to an engine with no EOS configured —
  // the stop token is resolved once, at first admission, and pinned.
  Harness h;
  const std::vector<std::int32_t> prompt = {7, 7, 7};

  // Learn a stop token: the 3rd unconstrained output.
  auto free_run = h.Uninterrupted(0, prompt, 10);
  std::int32_t stop = free_run[2];

  EngineConfig with_eos;
  with_eos.max_batch_size = 4;
  with_eos.eos_token = stop;
  Engine source_engine(&h.model, h.model.MakeKvConfig(256), with_eos);
  Engine dest_engine(&h.model, h.model.MakeKvConfig(256));  // no EOS
  EngineBackend src(1, &source_engine);
  EngineBackend dst(0, &dest_engine);

  ServingRequest req = ServingRequest::FromSpec(
      300, {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = 10});
  src.Admit(&req, 0.0);
  EXPECT_EQ(req.eos_token, stop);  // resolved and pinned at admission
  src.Step(0.0);                   // one token generated
  ASSERT_TRUE(src.Cancel(req.id).has_value());

  dst.Admit(&req, 1.0);
  while (dst.HasAnyWork()) dst.Step(1.0);
  // Stopped at the EOS inherited from the source, not at max_new_tokens.
  ASSERT_EQ(req.generated_tokens.size(), 3u);
  EXPECT_EQ(req.generated_tokens.back(), stop);
  EXPECT_TRUE(req.stopped_early);
}

TEST(SchedulerMigrationTest, KvPressureMigrationIsBitIdentical) {
  // KV-pressure path: the source backend's cache is too small for both
  // tenants, so the scheduler evicts the newest and re-routes it to the
  // other backend mid-generation. The migrated stream stays exact.
  Harness h;
  const std::vector<std::int32_t> prompt = {6, 1, 6, 1};
  const int total = 14;
  auto expected = h.Uninterrupted(1, prompt, total);

  EngineConfig cfg;
  cfg.max_batch_size = 4;
  // Source: a tight page pool (page_size 4) that two growing sequences
  // will overflow. Destination: roomy.
  Engine tight(&h.model, h.model.MakeKvConfig(/*num_pages=*/6,
                                              /*page_size=*/4), cfg);
  Engine roomy(&h.model, h.model.MakeKvConfig(512), cfg);
  EngineBackend b_src(1, &tight);
  EngineBackend b_dst(0, &roomy);
  // Index 0 = destination, index 1 = source (highest UUID attracts load).
  Scheduler sched({&b_dst, &b_src});

  // The keeper fits the tight pool alone (5 + 12 ≤ 24 slots) but the two
  // growing sequences together overflow it mid-generation.
  ServingRequest keeper = ServingRequest::FromSpec(
      200, {.lora = 0,
            .prompt_tokens = {9, 8, 7, 6, 5},
            .max_new_tokens = 12});
  ServingRequest target = ServingRequest::FromSpec(
      201, {.lora = 1, .prompt_tokens = prompt, .max_new_tokens = total});
  ASSERT_EQ(sched.Submit(&keeper, 0.0), 1);
  ASSERT_EQ(sched.Submit(&target, 0.1), 1);

  // Step the source until its victim query names the newest request.
  std::int64_t migrations = 0;
  int guard = 0;
  while (b_src.SelectEvictionVictims(1.0).empty()) {
    ASSERT_TRUE(b_src.HasAnyWork());
    b_src.Step(1.0);
    ASSERT_LT(++guard, 100) << "KV pressure never materialised";
  }
  ASSERT_GT(target.generated, 0);  // migration happens mid-generation
  auto touched = sched.MigrateForKvPressure(1, 2.0, &migrations);
  ASSERT_EQ(touched, (std::vector<int>{0}));
  EXPECT_EQ(migrations, 1);
  EXPECT_EQ(target.migrations, 1);
  ASSERT_EQ(b_dst.Find(target.id), &target);

  while (b_dst.HasAnyWork()) b_dst.Step(3.0);
  while (b_src.HasAnyWork()) b_src.Step(3.0);
  EXPECT_EQ(target.phase, RequestPhase::kFinished);
  EXPECT_EQ(target.generated_tokens, expected)
      << "KV-pressure migration changed the stream";
}

}  // namespace
}  // namespace punica
