// Migration correctness on real numerics (paper §5.3): cancelling a request
// mid-generation and re-adding it to another GPU (engine) with
// prompt+generated recomputation must reproduce exactly the token stream of
// an uninterrupted run. This is the property that makes evict+re-add a safe
// scheduling primitive.
#include <gtest/gtest.h>

#include <vector>

#include "model/llama.h"
#include "runtime/engine.h"

namespace punica {
namespace {

struct Harness {
  Harness() : model(TinyLlama4L(), 777) {
    model.AddLora(0, 8, 10);
    model.AddLora(1, 8, 20);
  }

  Engine MakeEngine(int max_batch = 8) {
    EngineConfig cfg;
    cfg.max_batch_size = max_batch;
    return Engine(&model, model.MakeKvConfig(512), cfg);
  }

  std::vector<std::int32_t> Uninterrupted(LoraId lora,
                                          std::vector<std::int32_t> prompt,
                                          int tokens) {
    Engine e = MakeEngine(1);
    std::int64_t id = e.AddRequest(lora, std::move(prompt), tokens);
    while (e.HasWork()) e.Step();
    return *e.Output(id);
  }

  LlamaModel model;
};

TEST(MigrationTest, SnapshotCarriesState) {
  Harness h;
  Engine e = h.MakeEngine();
  std::int64_t id = e.AddRequest(0, {3, 1, 4}, 10);
  for (int i = 0; i < 4; ++i) e.Step();
  auto snap = e.Cancel(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->lora, 0);
  EXPECT_EQ(snap->prompt, (std::vector<std::int32_t>{3, 1, 4}));
  EXPECT_EQ(snap->generated.size(), 4u);
  EXPECT_EQ(snap->max_new_tokens, 10);
  EXPECT_FALSE(e.HasWork());
}

TEST(MigrationTest, CancelUnknownReturnsEmpty) {
  Harness h;
  Engine e = h.MakeEngine();
  EXPECT_FALSE(e.Cancel(1234).has_value());
}

class MigrationPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(MigrationPointSweep, MigratedStreamEqualsUninterrupted) {
  int migrate_after = GetParam();
  Harness h;
  const std::vector<std::int32_t> prompt = {11, 7, 5, 2};
  const int total = 12;
  auto expected = h.Uninterrupted(0, prompt, total);

  // Source GPU runs `migrate_after` steps.
  Engine source = h.MakeEngine();
  std::int64_t id = source.AddRequest(0, prompt, total);
  for (int i = 0; i < migrate_after; ++i) source.Step();
  auto snap = source.Cancel(id);
  ASSERT_TRUE(snap.has_value());

  // Destination GPU re-prefills prompt + generated and finishes.
  Engine dest = h.MakeEngine();
  std::int64_t id2 = dest.AddMigrated(*snap);
  while (dest.HasWork()) dest.Step();

  EXPECT_EQ(*dest.Output(id2), expected)
      << "migration after step " << migrate_after << " changed the stream";
}

INSTANTIATE_TEST_SUITE_P(AfterSteps, MigrationPointSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 11));

TEST(MigrationTest, DoubleMigration) {
  Harness h;
  const std::vector<std::int32_t> prompt = {9, 9, 1};
  const int total = 10;
  auto expected = h.Uninterrupted(1, prompt, total);

  Engine a = h.MakeEngine();
  std::int64_t id = a.AddRequest(1, prompt, total);
  for (int i = 0; i < 3; ++i) a.Step();
  auto snap1 = a.Cancel(id);
  ASSERT_TRUE(snap1.has_value());

  Engine b = h.MakeEngine();
  std::int64_t id_b = b.AddMigrated(*snap1);
  for (int i = 0; i < 3; ++i) b.Step();
  auto snap2 = b.Cancel(id_b);
  ASSERT_TRUE(snap2.has_value());
  EXPECT_GT(snap2->generated.size(), snap1->generated.size());

  Engine c = h.MakeEngine();
  std::int64_t id_c = c.AddMigrated(*snap2);
  while (c.HasWork()) c.Step();
  EXPECT_EQ(*c.Output(id_c), expected);
}

TEST(MigrationTest, MigrationIntoBusyEngine) {
  // The destination already serves other LoRA requests; the migrated
  // request joins the mixed batch and its stream is still exact.
  Harness h;
  const std::vector<std::int32_t> prompt = {4, 8, 15};
  const int total = 9;
  auto expected = h.Uninterrupted(0, prompt, total);

  Engine source = h.MakeEngine();
  std::int64_t id = source.AddRequest(0, prompt, total);
  for (int i = 0; i < 4; ++i) source.Step();
  auto snap = source.Cancel(id);
  ASSERT_TRUE(snap.has_value());

  Engine dest = h.MakeEngine();
  dest.AddRequest(1, {16, 23, 42}, 15);
  for (int i = 0; i < 3; ++i) dest.Step();  // busy mid-flight
  std::int64_t id2 = dest.AddMigrated(*snap);
  while (dest.HasWork()) dest.Step();
  EXPECT_EQ(*dest.Output(id2), expected);
}

TEST(MigrationTest, SourceKvReleasedOnCancel) {
  Harness h;
  Engine e = h.MakeEngine();
  std::int32_t before = e.kv_free_pages();
  std::int64_t id = e.AddRequest(0, {1, 2, 3, 4, 5, 6, 7, 8}, 20);
  for (int i = 0; i < 5; ++i) e.Step();
  EXPECT_LT(e.kv_free_pages(), before);
  e.Cancel(id);
  EXPECT_EQ(e.kv_free_pages(), before);
}

}  // namespace
}  // namespace punica
