#include "frontend/frontend.h"

#include <gtest/gtest.h>

#include "frontend/stream.h"
#include "gpu/specs.h"
#include "sched/cluster.h"

namespace punica {
namespace {

// --- TokenStream unit tests ---

TEST(TokenStreamTest, PushAndConsumeInOrder) {
  TokenStream s;
  s.Push(10, 1.0);
  s.Push(11, 2.0);
  s.Push(12, 3.0);
  EXPECT_TRUE(s.HasNext());
  EXPECT_EQ(s.Next(), 10);
  EXPECT_EQ(s.Next(), 11);
  EXPECT_EQ(s.Next(), 12);
  EXPECT_FALSE(s.HasNext());
  EXPECT_EQ(s.total_pushed(), 3u);
  EXPECT_DOUBLE_EQ(s.first_token_time(), 1.0);
  EXPECT_DOUBLE_EQ(s.last_token_time(), 3.0);
}

TEST(TokenStreamTest, CloseStates) {
  TokenStream s;
  EXPECT_FALSE(s.closed());
  s.Close(StreamEnd::kFinished);
  EXPECT_TRUE(s.closed());
  EXPECT_EQ(s.state(), StreamEnd::kFinished);
  s.Close(StreamEnd::kFinished);  // idempotent
}

TEST(TokenStreamTest, PendingSurvivesClose) {
  TokenStream s;
  s.Push(5, 0.1);
  s.Close(StreamEnd::kFinished);
  EXPECT_TRUE(s.HasNext());
  EXPECT_EQ(s.DrainAll(), (std::vector<std::int32_t>{5}));
}

TEST(TokenStreamTest, SubscriberReceivesLiveTokens) {
  TokenStream s;
  std::vector<std::int32_t> seen;
  bool closed = false;
  s.Subscribe([&](std::int32_t token, double) { seen.push_back(token); },
              [&](StreamEnd reason) {
                closed = true;
                EXPECT_EQ(reason, StreamEnd::kFinished);
              });
  s.Push(7, 0.1);
  s.Push(8, 0.2);
  EXPECT_FALSE(s.HasNext());  // nothing buffered in subscriber mode
  EXPECT_EQ(seen, (std::vector<std::int32_t>{7, 8}));
  s.Close(StreamEnd::kFinished);
  EXPECT_TRUE(closed);
  EXPECT_EQ(s.total_pushed(), 2u);
}

TEST(TokenStreamTest, SubscribeDrainsBacklogFirst) {
  TokenStream s;
  s.Push(1, 0.1);
  s.Push(2, 0.2);
  std::vector<std::int32_t> seen;
  std::vector<double> times;
  s.Subscribe([&](std::int32_t token, double t) {
    seen.push_back(token);
    times.push_back(t);
  });
  EXPECT_EQ(seen, (std::vector<std::int32_t>{1, 2}));
  // Backlog replays with each token's original push timestamp.
  EXPECT_EQ(times, (std::vector<double>{0.1, 0.2}));
  s.Push(3, 0.3);
  EXPECT_EQ(seen, (std::vector<std::int32_t>{1, 2, 3}));
  EXPECT_EQ(times, (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(TokenStreamTest, SubscribeAfterCloseFiresCloseCallback) {
  TokenStream s;
  s.Close(StreamEnd::kCancelled);
  StreamEnd seen = StreamEnd::kOpen;
  s.Subscribe([](std::int32_t, double) {},
              [&](StreamEnd reason) { seen = reason; });
  EXPECT_EQ(seen, StreamEnd::kCancelled);
}

TEST(TokenStreamDeathTest, PushAfterCloseAborts) {
  TokenStream s;
  s.Close(StreamEnd::kCancelled);
  EXPECT_DEATH(s.Push(1, 0.0), "closed stream");
}

TEST(TokenStreamDeathTest, ConflictingCloseAborts) {
  TokenStream s;
  s.Close(StreamEnd::kFinished);
  EXPECT_DEATH(s.Close(StreamEnd::kCancelled), "conflicting");
}

TEST(TokenStreamDeathTest, NextOnEmptyAborts) {
  TokenStream s;
  EXPECT_DEATH(s.Next(), "empty stream");
}

// --- Frontend + cluster integration (simulated tier) ---

class FrontendClusterTest : public ::testing::Test {
 protected:
  FrontendClusterTest() : cm_(A100Sxm80GB()) {
    ClusterConfig cfg;
    cfg.num_gpus = 2;
    cfg.model = Llama7B();
    cfg.runner.max_batch_size = 8;
    cfg.runner.kv_capacity_tokens = 20000;
    driver_ = std::make_unique<ClusterDriver>(cfg, &cm_);
    Frontend::SchedulerApi api;
    api.submit = [this](ServingRequest* req) {
      driver_->SubmitExternal(req);
    };
    api.cancel = [this](std::int64_t id) {
      return driver_->CancelExternal(id);
    };
    frontend_ = std::make_unique<Frontend>(0, api, /*id_base=*/1000000);
    driver_->SetEmissionCallback(
        [this](const StepResult& result, double now) {
          frontend_->OnStep(result, now);
        });
  }

  RequestHandle Submit(LoraId lora, std::int32_t prompt_len,
                       std::int32_t output_len, double now) {
    return frontend_->Submit({.lora = lora,
                              .prompt_len = prompt_len,
                              .max_new_tokens = output_len,
                              .arrival_time = now});
  }

  CostModel cm_;
  std::unique_ptr<ClusterDriver> driver_;
  std::unique_ptr<Frontend> frontend_;
};

TEST_F(FrontendClusterTest, StreamsExactlyOutputLenTokens) {
  RequestHandle id = Submit(/*lora=*/3, /*prompt_len=*/40,
                            /*output_len=*/12, /*now=*/0.0);
  driver_->Run();
  TokenStream* stream = frontend_->Stream(id);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->state(), StreamEnd::kFinished);
  EXPECT_EQ(stream->total_pushed(), 12u);
  // Tokens arrive in order with monotone timestamps; on the simulated tier
  // the content is the per-request sequence tag.
  auto tokens = stream->DrainAll();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i], static_cast<std::int32_t>(i));
  }
  EXPECT_LE(stream->first_token_time(), stream->last_token_time());
}

TEST_F(FrontendClusterTest, ManyUsersAllComplete) {
  std::vector<RequestHandle> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(Submit(i % 3, 20 + i, 5 + i, 0.0));
  }
  EXPECT_EQ(frontend_->active_streams(), 10u);
  driver_->Run();
  EXPECT_EQ(frontend_->active_streams(), 0u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_NE(frontend_->Stream(ids[i]), nullptr);
    EXPECT_EQ(frontend_->Stream(ids[i])->total_pushed(), 5 + i);
    EXPECT_EQ(frontend_->Stream(ids[i])->state(), StreamEnd::kFinished);
  }
}

TEST_F(FrontendClusterTest, DisconnectCancelsUpstream) {
  RequestHandle a = Submit(0, 30, 500, 0.0);
  RequestHandle b = Submit(1, 30, 10, 0.0);
  // Run a little, then the user of `a` disconnects.
  driver_->Run(0.2);
  ASSERT_NE(frontend_->Stream(a), nullptr);
  frontend_->Disconnect(a);
  EXPECT_EQ(frontend_->Stream(a), nullptr);  // session freed with the user
  driver_->Run();
  // b completes normally; a received nothing further (its session is gone).
  ASSERT_NE(frontend_->Stream(b), nullptr);
  EXPECT_EQ(frontend_->Stream(b)->state(), StreamEnd::kFinished);
  EXPECT_EQ(frontend_->Stream(b)->total_pushed(), 10u);
}

TEST_F(FrontendClusterTest, IdSpacePartitioning) {
  Frontend::SchedulerApi api;
  api.submit = [this](ServingRequest* req) { driver_->SubmitExternal(req); };
  api.cancel = [this](std::int64_t id) {
    return driver_->CancelExternal(id);
  };
  Frontend f0(0, api, /*id_base=*/0, /*id_stride=*/2);
  Frontend f1(1, api, /*id_base=*/1, /*id_stride=*/2);
  SubmitSpec spec{.lora = 0, .prompt_len = 10, .max_new_tokens = 2};
  RequestHandle a = f0.Submit(spec);
  RequestHandle b = f1.Submit(spec);
  EXPECT_NE(a, b);
  EXPECT_TRUE(f0.Owns(a));
  EXPECT_FALSE(f0.Owns(b));
  EXPECT_TRUE(f1.Owns(b));
  // Emission fan-out ignores foreign ids; unknown lookups signal by
  // returning nullptr instead of aborting.
  f0.OnToken(b.id(), 0, 0.0);
  EXPECT_EQ(f1.Stream(b)->total_pushed(), 0u);
  EXPECT_EQ(f0.Stream(b), nullptr);
  EXPECT_EQ(f0.Stream(RequestHandle()), nullptr);
}

TEST_F(FrontendClusterTest, DisconnectAfterFinishFreesSession) {
  RequestHandle id = Submit(0, 10, 3, 0.0);
  driver_->Run();
  ASSERT_NE(frontend_->Stream(id), nullptr);
  EXPECT_EQ(frontend_->Stream(id)->state(), StreamEnd::kFinished);
  frontend_->Disconnect(id);  // no upstream cancel; just frees the session
  EXPECT_EQ(frontend_->Stream(id), nullptr);
  EXPECT_EQ(frontend_->live_sessions(), 0u);
  frontend_->Disconnect(id);  // idempotent on unknown ids
}

TEST_F(FrontendClusterTest, SessionRetentionIsBounded) {
  // Closed sessions are reclaimable while total_submitted() stays a
  // monotonic counter — long traces must not grow frontend memory.
  std::vector<RequestHandle> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(Submit(0, 10, 3, 0.0));
  driver_->Run();
  EXPECT_EQ(frontend_->total_submitted(), 6u);
  EXPECT_EQ(frontend_->live_sessions(), 6u);  // pull mode: kept until read
  for (auto id : ids) {
    EXPECT_TRUE(frontend_->Release(id));
  }
  EXPECT_EQ(frontend_->live_sessions(), 0u);
  EXPECT_EQ(frontend_->total_submitted(), 6u);  // counter unaffected
  EXPECT_FALSE(frontend_->Release(ids[0]));     // already gone
}

TEST_F(FrontendClusterTest, ReleaseRefusesOpenStreams) {
  RequestHandle id = Submit(0, 10, 500, 0.0);
  driver_->Run(0.1);
  EXPECT_FALSE(frontend_->Release(id));  // still producing
  ASSERT_NE(frontend_->Stream(id), nullptr);
  frontend_->Disconnect(id);
}

TEST_F(FrontendClusterTest, SubscribedSessionsFreeThemselves) {
  RequestHandle id = Submit(2, 25, 7, 0.0);
  std::vector<std::int32_t> seen;
  bool closed = false;
  ASSERT_TRUE(frontend_->Subscribe(
      id, [&](std::int32_t token, double) { seen.push_back(token); },
      [&](StreamEnd reason) {
        closed = true;
        EXPECT_EQ(reason, StreamEnd::kFinished);
      }));
  driver_->Run();
  EXPECT_TRUE(closed);
  ASSERT_EQ(seen.size(), 7u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int32_t>(i));
  }
  // The session reclaimed itself on finish: no leak over long traces.
  EXPECT_EQ(frontend_->live_sessions(), 0u);
  EXPECT_EQ(frontend_->Stream(id), nullptr);
  EXPECT_EQ(frontend_->total_submitted(), 1u);
  EXPECT_FALSE(frontend_->Subscribe(id, [](std::int32_t, double) {}));
}

TEST_F(FrontendClusterTest, ReentrantCleanupFromCloseCallbackIsSafe) {
  // Releasing (or disconnecting) the session from on_close is the natural
  // cleanup idiom; it must not double-free the session.
  RequestHandle id = Submit(0, 12, 4, 0.0);
  int tokens = 0;
  bool closed = false;
  ASSERT_TRUE(frontend_->Subscribe(
      id, [&](std::int32_t, double) { ++tokens; },
      [&](StreamEnd reason) {
        closed = true;
        EXPECT_EQ(reason, StreamEnd::kFinished);
        frontend_->Release(id);     // reentrant: session already detached
        frontend_->Disconnect(id);  // and again — must be a no-op
      }));
  driver_->Run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(tokens, 4);
  EXPECT_EQ(frontend_->live_sessions(), 0u);
}

TEST_F(FrontendClusterTest, DisconnectWithReentrantCloseCallbackIsSafe) {
  // Disconnecting an open subscribed stream fires on_close synchronously;
  // an on_close that calls Release/Disconnect (the blessed cleanup idiom)
  // must not double-erase the session.
  RequestHandle id = Submit(0, 30, 500, 0.0);
  bool closed = false;
  ASSERT_TRUE(frontend_->Subscribe(
      id, [](std::int32_t, double) {},
      [&](StreamEnd reason) {
        closed = true;
        EXPECT_EQ(reason, StreamEnd::kCancelled);
        frontend_->Release(id);
        frontend_->Disconnect(id);
      }));
  driver_->Run(0.2);
  frontend_->Disconnect(id);
  EXPECT_TRUE(closed);
  EXPECT_EQ(frontend_->live_sessions(), 0u);
  driver_->Run();  // the upstream cancel lets the cluster drain cleanly
}

TEST_F(FrontendClusterTest, SubscribeAfterFinishDeliversBacklogReentrantly) {
  RequestHandle id = Submit(0, 12, 3, 0.0);
  driver_->Run();  // finishes in pull mode; backlog of 3 tokens
  int tokens = 0;
  ASSERT_TRUE(frontend_->Subscribe(
      id, [&](std::int32_t, double) { ++tokens; },
      [&](StreamEnd) { frontend_->Release(id); }));  // reentrant release
  EXPECT_EQ(tokens, 3);
  EXPECT_EQ(frontend_->live_sessions(), 0u);
}

TEST_F(FrontendClusterTest, MidRunSubmissionCannotJumpTheFcfsQueue) {
  // A SubmitSpec with a default arrival_time of 0 submitted mid-run must
  // be clamped to the driver's current time, not sorted ahead of earlier
  // arrivals.
  RequestHandle first = Submit(0, 30, 40, 0.0);
  driver_->Run(0.5);
  RequestHandle late = frontend_->Submit(
      {.lora = 1, .prompt_len = 10, .max_new_tokens = 5});  // arrival 0.0
  driver_->Run();
  ASSERT_NE(frontend_->Stream(late), nullptr);
  EXPECT_EQ(frontend_->Stream(late)->state(), StreamEnd::kFinished);
  // The clamp gives it a real arrival, so first-token time ≥ submit time.
  EXPECT_GE(frontend_->Stream(late)->first_token_time(), 0.5);
  EXPECT_EQ(frontend_->Stream(first)->state(), StreamEnd::kFinished);
}

}  // namespace
}  // namespace punica
