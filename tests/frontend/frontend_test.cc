#include "frontend/frontend.h"

#include <gtest/gtest.h>

#include "frontend/stream.h"
#include "gpu/specs.h"
#include "sched/cluster.h"

namespace punica {
namespace {

// --- TokenStream unit tests ---

TEST(TokenStreamTest, PushAndConsumeInOrder) {
  TokenStream s;
  s.Push(10, 1.0);
  s.Push(11, 2.0);
  s.Push(12, 3.0);
  EXPECT_TRUE(s.HasNext());
  EXPECT_EQ(s.Next(), 10);
  EXPECT_EQ(s.Next(), 11);
  EXPECT_EQ(s.Next(), 12);
  EXPECT_FALSE(s.HasNext());
  EXPECT_EQ(s.total_pushed(), 3u);
  EXPECT_DOUBLE_EQ(s.first_token_time(), 1.0);
  EXPECT_DOUBLE_EQ(s.last_token_time(), 3.0);
}

TEST(TokenStreamTest, CloseStates) {
  TokenStream s;
  EXPECT_FALSE(s.closed());
  s.Close(StreamEnd::kFinished);
  EXPECT_TRUE(s.closed());
  EXPECT_EQ(s.state(), StreamEnd::kFinished);
  s.Close(StreamEnd::kFinished);  // idempotent
}

TEST(TokenStreamTest, PendingSurvivesClose) {
  TokenStream s;
  s.Push(5, 0.1);
  s.Close(StreamEnd::kFinished);
  EXPECT_TRUE(s.HasNext());
  EXPECT_EQ(s.DrainAll(), (std::vector<std::int32_t>{5}));
}

TEST(TokenStreamDeathTest, PushAfterCloseAborts) {
  TokenStream s;
  s.Close(StreamEnd::kCancelled);
  EXPECT_DEATH(s.Push(1, 0.0), "closed stream");
}

TEST(TokenStreamDeathTest, ConflictingCloseAborts) {
  TokenStream s;
  s.Close(StreamEnd::kFinished);
  EXPECT_DEATH(s.Close(StreamEnd::kCancelled), "conflicting");
}

TEST(TokenStreamDeathTest, NextOnEmptyAborts) {
  TokenStream s;
  EXPECT_DEATH(s.Next(), "empty stream");
}

// --- Frontend + cluster integration ---

class FrontendClusterTest : public ::testing::Test {
 protected:
  FrontendClusterTest() : cm_(A100Sxm80GB()) {
    ClusterConfig cfg;
    cfg.num_gpus = 2;
    cfg.model = Llama7B();
    cfg.runner.max_batch_size = 8;
    cfg.runner.kv_capacity_tokens = 20000;
    driver_ = std::make_unique<ClusterDriver>(cfg, &cm_);
    Frontend::SchedulerApi api;
    api.submit = [this](ServingRequest* req) {
      driver_->SubmitExternal(req);
    };
    api.cancel = [this](std::int64_t id) {
      return driver_->scheduler().Cancel(id);
    };
    frontend_ = std::make_unique<Frontend>(0, api, /*id_base=*/1000000);
    driver_->SetEmissionCallback(
        [this](const std::vector<std::int64_t>& emitted,
               const std::vector<std::int64_t>& finished, double now) {
          for (auto id : emitted) frontend_->OnToken(id, now);
          for (auto id : finished) frontend_->OnFinished(id, now);
        });
  }

  CostModel cm_;
  std::unique_ptr<ClusterDriver> driver_;
  std::unique_ptr<Frontend> frontend_;
};

TEST_F(FrontendClusterTest, StreamsExactlyOutputLenTokens) {
  std::int64_t id = frontend_->Submit(/*lora=*/3, /*prompt_len=*/40,
                                      /*output_len=*/12, /*now=*/0.0);
  driver_->Run();
  TokenStream& stream = frontend_->Stream(id);
  EXPECT_EQ(stream.state(), StreamEnd::kFinished);
  EXPECT_EQ(stream.total_pushed(), 12u);
  // Tokens arrive in order with monotone timestamps.
  auto tokens = stream.DrainAll();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i], static_cast<std::int32_t>(i));
  }
  EXPECT_LE(stream.first_token_time(), stream.last_token_time());
}

TEST_F(FrontendClusterTest, ManyUsersAllComplete) {
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(frontend_->Submit(i % 3, 20 + i, 5 + i, 0.0));
  }
  EXPECT_EQ(frontend_->active_streams(), 10u);
  driver_->Run();
  EXPECT_EQ(frontend_->active_streams(), 0u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(frontend_->Stream(ids[i]).total_pushed(), 5 + i);
    EXPECT_EQ(frontend_->Stream(ids[i]).state(), StreamEnd::kFinished);
  }
}

TEST_F(FrontendClusterTest, DisconnectCancelsUpstream) {
  std::int64_t a = frontend_->Submit(0, 30, 500, 0.0);
  std::int64_t b = frontend_->Submit(1, 30, 10, 0.0);
  // Run a little, then the user of `a` disconnects.
  driver_->Run(0.2);
  std::size_t a_tokens_at_disconnect = frontend_->Stream(a).total_pushed();
  frontend_->Disconnect(a);
  EXPECT_EQ(frontend_->Stream(a).state(), StreamEnd::kCancelled);
  driver_->Run();
  // The cancelled stream receives no further tokens; b completes normally.
  EXPECT_EQ(frontend_->Stream(a).total_pushed(), a_tokens_at_disconnect);
  EXPECT_EQ(frontend_->Stream(b).state(), StreamEnd::kFinished);
  EXPECT_EQ(frontend_->Stream(b).total_pushed(), 10u);
}

TEST_F(FrontendClusterTest, IdSpacePartitioning) {
  Frontend::SchedulerApi api;
  api.submit = [this](ServingRequest* req) { driver_->SubmitExternal(req); };
  api.cancel = [this](std::int64_t id) {
    return driver_->scheduler().Cancel(id);
  };
  Frontend f0(0, api, /*id_base=*/0, /*id_stride=*/2);
  Frontend f1(1, api, /*id_base=*/1, /*id_stride=*/2);
  std::int64_t a = f0.Submit(0, 10, 2, 0.0);
  std::int64_t b = f1.Submit(0, 10, 2, 0.0);
  EXPECT_NE(a, b);
  EXPECT_TRUE(f0.Owns(a));
  EXPECT_FALSE(f0.Owns(b));
  EXPECT_TRUE(f1.Owns(b));
  // Emission fan-out ignores foreign ids.
  f0.OnToken(b, 0.0);
  EXPECT_EQ(f1.Stream(b).total_pushed(), 0u);
}

TEST_F(FrontendClusterTest, DisconnectAfterFinishIsNoOp) {
  std::int64_t id = frontend_->Submit(0, 10, 3, 0.0);
  driver_->Run();
  EXPECT_EQ(frontend_->Stream(id).state(), StreamEnd::kFinished);
  frontend_->Disconnect(id);  // must not flip the state
  EXPECT_EQ(frontend_->Stream(id).state(), StreamEnd::kFinished);
}

}  // namespace
}  // namespace punica
