// The groupwise quantization substrate: block layout/packing, round-trip
// exactness on representable values, tail-block padding, degenerate-scale
// handling (all-zero and subnormal-maximum groups must never produce
// NaN/inf), and agreement between the fused quant GEMM kernels and an
// explicit dequantize-then-GEMM reference on the scalar path (bit-exact —
// dequant is exact in f32 and the scalar kernels run the reference's
// per-element operations in the same order).
#include "tensor/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "util/compute_context.h"
#include "util/rng.h"

namespace punica {
namespace {

TEST(QuantTest, WeightDtypeNames) {
  EXPECT_STREQ(WeightDtypeName(WeightDtype::kF16), "f16");
  EXPECT_STREQ(WeightDtypeName(WeightDtype::kQ8_0), "q8_0");
  EXPECT_STREQ(WeightDtypeName(WeightDtype::kQ4_0), "q4_0");
}

TEST(QuantTest, ParseWeightDtype) {
  WeightDtype d = WeightDtype::kF16;
  EXPECT_TRUE(ParseWeightDtype("q8_0", &d));
  EXPECT_EQ(d, WeightDtype::kQ8_0);
  EXPECT_TRUE(ParseWeightDtype("q4", &d));
  EXPECT_EQ(d, WeightDtype::kQ4_0);
  EXPECT_TRUE(ParseWeightDtype("f16", &d));
  EXPECT_EQ(d, WeightDtype::kF16);
  d = WeightDtype::kQ8_0;
  EXPECT_FALSE(ParseWeightDtype("int8", &d));
  EXPECT_EQ(d, WeightDtype::kQ8_0) << "failed parse must not clobber *out";
}

TEST(QuantTest, WeightBytesForScalesByDtype) {
  // 64 params = 2 blocks: f16 128 B, q8 68 B, q4 36 B.
  EXPECT_EQ(WeightBytesFor(64, WeightDtype::kF16), 128);
  EXPECT_EQ(WeightBytesFor(64, WeightDtype::kQ8_0), 68);
  EXPECT_EQ(WeightBytesFor(64, WeightDtype::kQ4_0), 36);
  EXPECT_EQ(WeightBytesFor(0, WeightDtype::kQ8_0), 0);
}

TEST(QuantTest, Q8RoundTripExactOnRepresentableValues) {
  // Values of the form d * q with d an exact power of two and |q| ≤ 127
  // survive quantization exactly: amax/127 rounds to a nearby f16, but a
  // group whose amax IS 127·2^e yields d = 2^e exactly, and every d·q is
  // then an exact f16-scale × int8 product.
  std::vector<float> xs(kQuantBlock);
  const float d = 0.03125f;  // 2^-5
  for (std::int64_t i = 0; i < kQuantBlock; ++i) {
    int q = static_cast<int>(i * 8) - 127;  // spans [-127, 121], hits ±127
    if (q > 127) q = 127;
    xs[static_cast<std::size_t>(i)] = d * static_cast<float>(q);
  }
  xs[0] = d * -127.0f;
  xs[1] = d * 127.0f;  // amax = 127·2^-5 → scale exactly 2^-5
  std::vector<BlockQ8_0> blocks(1);
  QuantizeRowQ8(xs, blocks.data());
  EXPECT_EQ(blocks[0].scale.ToFloat(), d);
  std::vector<float> back(kQuantBlock);
  DequantRowQ8Ref(blocks.data(), back);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(back[i], xs[i]) << "element " << i;
  }
}

TEST(QuantTest, Q4PackingPutsElementJLowAndJPlus16High) {
  // Construct a group whose quantized codes are known: amax at x[0] = -8d
  // (code 0), x[16] = +7d (code 15), zeros elsewhere (code 8).
  const float d = 0.25f;
  std::vector<float> xs(kQuantBlock, 0.0f);
  xs[0] = -8.0f * d;   // the signed max → d = (-8d)/-8 = d, code 0
  xs[16] = 7.0f * d;   // code 15
  std::vector<BlockQ4_0> blocks(1);
  QuantizeRowQ4(xs, blocks.data());
  EXPECT_EQ(blocks[0].scale.ToFloat(), d);
  // Byte 0: element 0 (code 0) in the LOW nibble, element 16 (code 15) in
  // the HIGH nibble.
  EXPECT_EQ(blocks[0].qs[0], 0xF0);
  for (int j = 1; j < kQuantBlock / 2; ++j) {
    EXPECT_EQ(blocks[0].qs[j], 0x88) << "byte " << j;
  }
  std::vector<float> back(kQuantBlock);
  DequantRowQ4Ref(blocks.data(), back);
  EXPECT_EQ(back[0], -8.0f * d);
  EXPECT_EQ(back[16], 7.0f * d);
  for (std::size_t i = 0; i < back.size(); ++i) {
    if (i != 0 && i != 16) {
      EXPECT_EQ(back[i], 0.0f) << i;
    }
  }
}

TEST(QuantTest, TailBlockPadsWithZeroCodes) {
  // n = 40: the second block holds 8 real elements + 24 pad codes that
  // must dequantize to exactly 0 (q8: code 0; q4: code 8).
  const std::size_t n = 40;
  Pcg32 rng(77);
  auto xs = RandomGaussianVector(n, 1.0f, rng);
  std::vector<BlockQ8_0> q8(QuantBlocksPerRow(static_cast<std::int64_t>(n)));
  std::vector<BlockQ4_0> q4(q8.size());
  QuantizeRowQ8(xs, q8.data());
  QuantizeRowQ4(xs, q4.data());
  ASSERT_EQ(q8.size(), 2u);
  for (std::int64_t i = 8; i < kQuantBlock; ++i) {
    EXPECT_EQ(q8[1].qs[i], 0) << "q8 pad code " << i;
  }
  // q4 pad: elements 8..15 (low nibbles of bytes 8..15) and all of 16..31
  // (high nibbles) are code 8; bytes 8..15 are exactly 0x88.
  for (int j = 8; j < kQuantBlock / 2; ++j) {
    EXPECT_EQ(q4[1].qs[j], 0x88) << "q4 pad byte " << j;
  }
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(q4[1].qs[j] >> 4, 8) << "q4 pad high nibble " << j;
  }
  // Full padded-width dequant reads back zeros past n.
  std::vector<float> back(2 * kQuantBlock);
  DequantRowQ8Ref(q8.data(), back);
  for (std::size_t i = n; i < back.size(); ++i) EXPECT_EQ(back[i], 0.0f);
  DequantRowQ4Ref(q4.data(), back);
  for (std::size_t i = n; i < back.size(); ++i) EXPECT_EQ(back[i], 0.0f);
}

TEST(QuantTest, AllZeroGroupStoresZeroScaleAndDequantsToZero) {
  std::vector<float> xs(kQuantBlock, 0.0f);
  std::vector<BlockQ8_0> q8(1);
  std::vector<BlockQ4_0> q4(1);
  QuantizeRowQ8(xs, q8.data());
  QuantizeRowQ4(xs, q4.data());
  EXPECT_EQ(q8[0].scale.ToFloat(), 0.0f);
  EXPECT_EQ(q4[0].scale.ToFloat(), 0.0f);
  std::vector<float> back(kQuantBlock, 123.0f);
  DequantRowQ8Ref(q8.data(), back);
  for (float v : back) EXPECT_EQ(v, 0.0f);
  back.assign(kQuantBlock, 123.0f);
  DequantRowQ4Ref(q4.data(), back);
  for (float v : back) EXPECT_EQ(v, 0.0f);
  // The fused axpy must also be an exact no-op on zero-scale blocks.
  std::vector<float> y(kQuantBlock, 0.5f);
  ScopedSimdLevel guard(SimdLevel::kScalar);
  Simd().axpy_q8(2.0f, q8.data(), y.data(), kQuantBlock);
  Simd().axpy_q4(2.0f, q4.data(), y.data(), kQuantBlock);
  for (float v : y) EXPECT_EQ(v, 0.5f);
}

TEST(QuantTest, SubnormalMaximaNeverProduceNanOrInf) {
  // A group whose amax underflows the f16 scale (amax/127 < 2^-24) must
  // store scale 0 and zero codes — dividing by the rounded-to-zero scale
  // would otherwise make inf/NaN codes.
  std::vector<float> xs(kQuantBlock, 0.0f);
  xs[3] = std::numeric_limits<float>::denorm_min();
  xs[9] = -1e-30f;
  std::vector<BlockQ8_0> q8(1);
  std::vector<BlockQ4_0> q4(1);
  QuantizeRowQ8(xs, q8.data());
  QuantizeRowQ4(xs, q4.data());
  std::vector<float> back(kQuantBlock);
  DequantRowQ8Ref(q8.data(), back);
  for (float v : back) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0f);
  }
  DequantRowQ4Ref(q4.data(), back);
  for (float v : back) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(QuantTest, WeightMatrixShapesAndBytes) {
  Pcg32 rng(5);
  Tensor<f16> w({7, 100});  // 100 cols → 4 blocks/row (tail-padded)
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()));
  }
  Tensor<f16> copy({7, 100});
  std::copy(w.data().begin(), w.data().end(), copy.data().begin());
  WeightMatrix q8 = WeightMatrix::FromF16(std::move(w), WeightDtype::kQ8_0);
  EXPECT_EQ(q8.rows(), 7);
  EXPECT_EQ(q8.cols(), 100);
  EXPECT_EQ(q8.blocks_per_row(), 4);
  EXPECT_EQ(q8.byte_size(), 7u * 4u * sizeof(BlockQ8_0));
  WeightMatrix q4 = WeightMatrix::FromF16(std::move(copy),
                                          WeightDtype::kQ4_0);
  EXPECT_EQ(q4.byte_size(), 7u * 4u * sizeof(BlockQ4_0));
  // DequantRow returns the same values as the row-level reference.
  std::vector<float> row(100);
  q8.DequantRow(6, row);
  std::vector<float> padded(4 * kQuantBlock);
  DequantRowQ8Ref(q8.q8_data().data() + 6 * 4, padded);
  for (std::size_t i = 0; i < row.size(); ++i) EXPECT_EQ(row[i], padded[i]);
}

TEST(QuantTest, ScalarFusedGemmMatchesExplicitDequantReference) {
  // On the scalar path the fused kernels perform exactly the reference's
  // per-element operations in the same ascending-k order, so GemmAccW over
  // quantized weights is bit-identical to GemmAcc over the dequantized f32
  // matrix. (Vector paths are covered by simd_test's tolerance suite.)
  ScopedSimdLevel guard(SimdLevel::kScalar);
  ComputeContext ctx({.num_threads = 2});
  Pcg32 rng(2028);
  const int m = 5, k = 37, n = 129;  // k and n straddle block boundaries
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  for (WeightDtype dtype : {WeightDtype::kQ8_0, WeightDtype::kQ4_0}) {
    Tensor<f16> wf({k, n});
    for (auto& v : wf.data()) {
      v = f16(static_cast<float>(rng.NextGaussian()) * 0.1f);
    }
    WeightMatrix w = WeightMatrix::FromF16(std::move(wf), dtype);
    // Dequantized f32 reference matrix.
    std::vector<float> wref(static_cast<std::size_t>(k) * n);
    std::vector<float> rowbuf(static_cast<std::size_t>(n));
    for (int p = 0; p < k; ++p) {
      w.DequantRow(p, rowbuf);
      std::copy(rowbuf.begin(), rowbuf.end(),
                wref.begin() + static_cast<std::size_t>(p) * n);
    }
    // Naive reference with the kernels' ascending-k per-element order.
    // Neither this TU nor the scalar kernels are compiled with FMA, so no
    // contraction can perturb either side: bit-equality is exact.
    auto naive_acc = [&](std::span<float> y, int rows) {
      for (int i = 0; i < rows; ++i) {
        for (int p = 0; p < k; ++p) {
          float xv = x[static_cast<std::size_t>(i) * k + p];
          for (int j = 0; j < n; ++j) {
            y[static_cast<std::size_t>(i) * n + j] +=
                xv * wref[static_cast<std::size_t>(p) * n + j];
          }
        }
      }
    };
    std::vector<float> y_fused(static_cast<std::size_t>(m) * n, 0.25f);
    std::vector<float> y_ref = y_fused;
    GemmAccW(x, w, y_fused, m, k, n, ctx);
    naive_acc(y_ref, m);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_fused[i], y_ref[i])
          << WeightDtypeName(dtype) << " element " << i;
    }
    // And the GEMV path (single-row fused axpy) agrees too.
    std::vector<float> yv_fused(static_cast<std::size_t>(n), -1.0f);
    std::vector<float> yv_ref = yv_fused;
    GemvAccW(std::span<const float>(x).first(static_cast<std::size_t>(k)),
             w, yv_fused, k, n, ctx);
    naive_acc(yv_ref, 1);
    for (std::size_t i = 0; i < yv_ref.size(); ++i) {
      ASSERT_EQ(yv_fused[i], yv_ref[i])
          << WeightDtypeName(dtype) << " gemv element " << i;
    }
  }
}

namespace {

// Random quantized [rows, cols] matrix plus a retained f16 master copy, the
// shard-alignment fixture: slices of the quantized matrix are compared
// against quantizing slices of the master.
struct SliceFixture {
  Tensor<f16> master;
  WeightMatrix q;
};

SliceFixture MakeSliceFixture(std::int64_t rows, std::int64_t cols,
                              WeightDtype dtype, std::uint64_t seed) {
  Pcg32 rng(seed);
  SliceFixture f;
  f.master = Tensor<f16>({rows, cols});
  for (auto& v : f.master.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.2f);
  }
  Tensor<f16> copy({rows, cols});
  std::copy(f.master.data().begin(), f.master.data().end(),
            copy.data().begin());
  f.q = WeightMatrix::FromF16(std::move(copy), dtype);
  return f;
}

Tensor<f16> SliceMaster(const Tensor<f16>& m, std::int64_t r0, std::int64_t r1,
                        std::int64_t c0, std::int64_t c1) {
  Tensor<f16> out({r1 - r0, c1 - c0});
  for (std::int64_t i = r0; i < r1; ++i) {
    auto src = m.row(i);
    auto dst = out.row(i - r0);
    std::copy(src.begin() + c0, src.begin() + c1, dst.begin());
  }
  return out;
}

bool SameBlocks(const WeightMatrix& a, const WeightMatrix& b) {
  if (a.dtype() != b.dtype() || a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  if (a.dtype() == WeightDtype::kQ8_0) {
    return a.q8_data().size() == b.q8_data().size() &&
           std::memcmp(a.q8_data().data(), b.q8_data().data(),
                       a.q8_data().size() * sizeof(BlockQ8_0)) == 0;
  }
  return a.q4_data().size() == b.q4_data().size() &&
         std::memcmp(a.q4_data().data(), b.q4_data().data(),
                     a.q4_data().size() * sizeof(BlockQ4_0)) == 0;
}

}  // namespace

// The shard-alignment contract the tensor-parallel split relies on: blocks
// run along the column dimension, so ROW slices (the O/Down row-parallel
// seams, and LoRA A row slices at any adapter rank — including ranks not
// divisible by tp) are bit-exact at ANY boundary: quantize-then-slice
// equals slice-then-quantize.
TEST(QuantSliceTest, RowSlicesAreBitExactAtAnyBoundary) {
  for (WeightDtype dtype : {WeightDtype::kQ8_0, WeightDtype::kQ4_0}) {
    SliceFixture f = MakeSliceFixture(96, 64, dtype, 41);
    // Deliberately non-block-aligned row boundaries (rows 5..71): row
    // slices never touch block geometry.
    WeightMatrix sliced = f.q.SliceRows(5, 71);
    WeightMatrix ref = WeightMatrix::FromF16(
        SliceMaster(f.master, 5, 71, 0, 64), dtype);
    EXPECT_TRUE(SameBlocks(sliced, ref)) << WeightDtypeName(dtype);
  }
}

TEST(QuantSliceTest, AlignedColumnSlicesAreBitExact) {
  for (WeightDtype dtype : {WeightDtype::kQ8_0, WeightDtype::kQ4_0}) {
    SliceFixture f = MakeSliceFixture(16, 128, dtype, 43);
    // 32-block-aligned column window [32, 96): whole blocks copy over.
    WeightMatrix sliced = f.q.SliceCols(32, 96);
    WeightMatrix ref = WeightMatrix::FromF16(
        SliceMaster(f.master, 0, 16, 32, 96), dtype);
    EXPECT_TRUE(SameBlocks(sliced, ref)) << WeightDtypeName(dtype);
  }
}

TEST(QuantSliceTest, TailPaddedWidthSlicesToTheLastShard) {
  // A 100-wide q8 matrix has a padded tail block; the final column shard
  // [64, 100) carries it (col_end == cols is allowed off-boundary).
  SliceFixture f = MakeSliceFixture(4, 100, WeightDtype::kQ8_0, 47);
  WeightMatrix sliced = f.q.SliceCols(64, 100);
  EXPECT_EQ(sliced.cols(), 36);
  EXPECT_EQ(sliced.blocks_per_row(), 2);
  WeightMatrix ref = WeightMatrix::FromF16(
      SliceMaster(f.master, 0, 4, 64, 100), WeightDtype::kQ8_0);
  EXPECT_TRUE(SameBlocks(sliced, ref));
}

TEST(QuantSliceTest, F16SlicesAtAnyBoundary) {
  // The f16 path has no block constraint — mid-"block" column slices are
  // exact element copies (this is why f16 LoRA adapters shard at any seam
  // without a requantization exemption).
  SliceFixture f = MakeSliceFixture(8, 64, WeightDtype::kQ8_0, 49);
  WeightMatrix wf16 = WeightMatrix::FromF16(
      SliceMaster(f.master, 0, 8, 0, 64), WeightDtype::kF16);
  WeightMatrix sliced = wf16.SliceCols(10, 23);
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 13; ++j) {
      EXPECT_TRUE(sliced.at({i, j}) == f.master.at({i, j + 10}));
    }
  }
  WeightMatrix rows = wf16.SliceRows(3, 6);
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_TRUE(rows.at({0, 0}) == f.master.at({3, 0}));
}

TEST(QuantSliceTest, RequantizeMatchesDirectQuantization) {
  SliceFixture f = MakeSliceFixture(8, 64, WeightDtype::kQ8_0, 53);
  WeightMatrix wf16 = WeightMatrix::FromF16(
      SliceMaster(f.master, 0, 8, 0, 64), WeightDtype::kF16);
  EXPECT_TRUE(SameBlocks(wf16.Requantize(WeightDtype::kQ8_0), f.q));
}

TEST(QuantSliceDeathTest, MisalignedQuantizedColumnSliceAborts) {
  // A mid-block column split would require requantization with different
  // per-group extrema — a silent precision change — so the slicer refuses.
  // (The tp shard path hits this only when a quantized seam lands mid-block,
  // e.g. TinyLlama q8_0 at tp=4; ShardLayer requantizes the f16 master
  // instead, the documented exemption.)
  SliceFixture q8 = MakeSliceFixture(4, 64, WeightDtype::kQ8_0, 59);
  EXPECT_DEATH(q8.q.SliceCols(16, 48), "boundary");
  EXPECT_DEATH(q8.q.SliceCols(0, 48), "boundary");
  SliceFixture q4 = MakeSliceFixture(4, 64, WeightDtype::kQ4_0, 61);
  EXPECT_DEATH(q4.q.SliceCols(8, 40), "boundary");
}

TEST(QuantSliceDeathTest, RequantizingAQuantizedMatrixAborts) {
  SliceFixture f = MakeSliceFixture(4, 64, WeightDtype::kQ8_0, 67);
  EXPECT_DEATH(f.q.Requantize(WeightDtype::kQ4_0), "f16 master");
}

TEST(QuantTest, QuantizationIsDeterministicInTheF16Bits) {
  Pcg32 rng(99);
  auto xs = RandomGaussianVector(256, 2.0f, rng);
  std::vector<BlockQ8_0> a(QuantBlocksPerRow(256)), b(QuantBlocksPerRow(256));
  QuantizeRowQ8(xs, a.data());
  QuantizeRowQ8(xs, b.data());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(BlockQ8_0)), 0);
  std::vector<BlockQ4_0> c(QuantBlocksPerRow(256)), d(QuantBlocksPerRow(256));
  QuantizeRowQ4(xs, c.data());
  QuantizeRowQ4(xs, d.data());
  EXPECT_EQ(std::memcmp(c.data(), d.data(),
                        c.size() * sizeof(BlockQ4_0)), 0);
}

}  // namespace
}  // namespace punica
