// The SIMD dispatch seam: level resolution/override, bit-exactness of the
// f16<->f32 bulk conversions across paths, and the scalar-vs-native
// kernel-equivalence suite with the documented tolerance (bit-identical
// where no FMA reassociation is involved, bounded FMA-contraction drift
// elsewhere). When the native TU isn't compiled in (or the CPU lacks
// avx2+fma+f16c), the cross-path tests skip — the Release CI job builds
// with -DPUNICA_NATIVE_SIMD=ON so they run there.
#include "tensor/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/sgmv.h"
#include "kvcache/kvcache.h"
#include "model/attention.h"
#include "model/config.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/compute_context.h"
#include "util/rng.h"

namespace punica {
namespace {

bool IsNanHalf(std::uint16_t bits) {
  return (bits & 0x7C00U) == 0x7C00U && (bits & 0x3FFU) != 0;
}

TEST(SimdDispatchTest, ScalarAlwaysSelectable) {
  ScopedSimdLevel guard(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(Simd().name, "scalar");
}

TEST(SimdDispatchTest, NativeSelectionFallsBackWhenUnavailable) {
  ScopedSimdLevel guard(SimdLevel::kNative);
  if (NativeSimdAvailable()) {
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kNative);
    EXPECT_STREQ(Simd().name, "native");
  } else {
    // Requesting native without the TU/CPU support degrades to scalar
    // rather than crashing — the PUNICA_SIMD=native-on-old-hardware case.
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
}

TEST(SimdDispatchTest, SetSimdLevelReturnsPrevious) {
  SimdLevel ambient = ActiveSimdLevel();
  SimdLevel prev = SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(prev, ambient);
  EXPECT_EQ(SetSimdLevel(ambient), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), ambient);
}

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kNative), "native");
}

TEST(SimdDispatchTest, AvailabilityImpliesCompiled) {
  if (NativeSimdAvailable()) EXPECT_TRUE(NativeSimdCompiled());
}

// --- Conversion bit-exactness across dispatch paths ---

TEST(SimdConversionTest, HalfToFloatBitIdenticalForAllNonNanPatterns) {
  if (!NativeSimdAvailable()) GTEST_SKIP() << "native SIMD unavailable";
  std::vector<f16> src;
  src.reserve(1 << 16);
  for (std::uint32_t bits = 0; bits < (1U << 16); ++bits) {
    auto b16 = static_cast<std::uint16_t>(bits);
    // NaN payload handling is the one documented divergence (hardware
    // quiets signalling NaNs); no kernel produces or consumes NaN halves.
    if (IsNanHalf(b16)) continue;
    src.push_back(f16::FromBits(b16));
  }
  std::vector<float> scalar_out(src.size()), native_out(src.size());
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    HalfToFloatN(src, std::span<float>(scalar_out));
  }
  {
    ScopedSimdLevel guard(SimdLevel::kNative);
    HalfToFloatN(src, std::span<float>(native_out));
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(scalar_out[i]),
              std::bit_cast<std::uint32_t>(native_out[i]))
        << "half bits 0x" << std::hex << src[i].bits();
  }
}

TEST(SimdConversionTest, FloatToHalfBitIdenticalAcrossPaths) {
  if (!NativeSimdAvailable()) GTEST_SKIP() << "native SIMD unavailable";
  // Every rounding regime: exact halves, perturbed neighbours (round up /
  // down / to-even ties), fp16 subnormals, underflow, overflow, ±0, ±inf.
  std::vector<float> src;
  for (std::uint32_t bits = 0; bits < (1U << 16); ++bits) {
    auto b16 = static_cast<std::uint16_t>(bits);
    if (IsNanHalf(b16)) continue;
    float v = f16::FromBits(b16).ToFloat();
    src.push_back(v);
    std::uint32_t f32 = std::bit_cast<std::uint32_t>(v);
    // Nudge the fp32 mantissa around the value so the dropped-bit patterns
    // cover above/below/at the rounding boundary.
    for (std::uint32_t delta : {1U, 0x1000U, 0x1FFFU, 0x2000U, 0x2001U}) {
      src.push_back(std::bit_cast<float>(f32 + delta));
      src.push_back(std::bit_cast<float>(f32 ^ delta));
    }
  }
  Pcg32 rng(123);
  for (int i = 0; i < 4096; ++i) {
    src.push_back(static_cast<float>(rng.NextGaussian()) * 100.0f);
  }
  // Drop NaNs produced by nudging infinity's bit pattern.
  std::erase_if(src, [](float v) { return std::isnan(v); });

  std::vector<f16> scalar_out(src.size()), native_out(src.size());
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    FloatToHalfN(src, std::span<f16>(scalar_out));
  }
  {
    ScopedSimdLevel guard(SimdLevel::kNative);
    FloatToHalfN(src, std::span<f16>(native_out));
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(scalar_out[i].bits(), native_out[i].bits())
        << "float " << src[i] << " (bits 0x" << std::hex
        << std::bit_cast<std::uint32_t>(src[i]) << ")";
  }
}

TEST(SimdConversionTest, OddLengthsExerciseVectorBodyAndTail) {
  // Lengths straddling the 8-lane width, on whatever path is active.
  Pcg32 rng(9);
  for (std::size_t n : {0U, 1U, 7U, 8U, 9U, 16U, 17U, 31U}) {
    auto xs = RandomGaussianVector(n, 2.0f, rng);
    std::vector<f16> h(n);
    std::vector<float> back(n);
    FloatToHalfN(xs, std::span<f16>(h));
    HalfToFloatN(h, std::span<float>(back));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(h[i].bits(), FloatToHalfBits(xs[i])) << n << ":" << i;
      ASSERT_EQ(back[i], f16::FromBits(h[i].bits()).ToFloat());
    }
  }
}

// --- Scalar-vs-native kernel equivalence ---
//
// Documented cross-path tolerance: the native path fuses each
// multiply-accumulate (no separate rounding of the product) and dot_f16
// reduces 8 lane accumulators in a fixed order, so outputs drift by at
// most a few ULPs per reduction term. The bound below is loose against
// that model and tight against a real bug (a wrong element, stripe or sign
// is orders of magnitude larger).
constexpr float kPathTolerance = 2e-4f;

bool WithinPathTolerance(float a, float b) {
  return std::abs(a - b) <= kPathTolerance * (1.0f + std::abs(a) +
                                              std::abs(b));
}

enum class KernelUnderTest {
  kGemmSetF16W,
  kGemmAccF16W,
  kGemmSetF32,
  kGemvAccF16W,
  kSgmvShrink,
  kSgmvExpand,
  kPrefillAttention,
  kDecodeAttention,
};

const char* KernelName(KernelUnderTest k) {
  switch (k) {
    case KernelUnderTest::kGemmSetF16W: return "GemmSetF16W";
    case KernelUnderTest::kGemmAccF16W: return "GemmAccF16W";
    case KernelUnderTest::kGemmSetF32: return "GemmSetF32";
    case KernelUnderTest::kGemvAccF16W: return "GemvAccF16W";
    case KernelUnderTest::kSgmvShrink: return "SgmvShrink";
    case KernelUnderTest::kSgmvExpand: return "SgmvExpand";
    case KernelUnderTest::kPrefillAttention: return "PrefillAttention";
    case KernelUnderTest::kDecodeAttention: return "DecodeAttention";
  }
  return "?";
}

// Runs one kernel on a fixed seeded problem (shapes straddle the tile and
// lane widths) and returns its full output vector.
std::vector<float> RunKernel(KernelUnderTest kernel) {
  Pcg32 rng(2027);
  ComputeContext ctx({.num_threads = 2});
  switch (kernel) {
    case KernelUnderTest::kGemmSetF16W:
    case KernelUnderTest::kGemmAccF16W:
    case KernelUnderTest::kGemmSetF32: {
      const int m = 9, k = 67, n = 131;
      auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f,
                                    rng);
      auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 0.1f,
                                     rng);
      std::vector<float> y(static_cast<std::size_t>(m) * n, 0.25f);
      if (kernel == KernelUnderTest::kGemmSetF32) {
        GemmSet(x, wf, y, m, k, n, ctx);
        return y;
      }
      std::vector<f16> w(wf.size());
      for (std::size_t i = 0; i < wf.size(); ++i) w[i] = f16(wf[i]);
      if (kernel == KernelUnderTest::kGemmSetF16W) {
        GemmSetF16W(x, w, y, m, k, n, ctx);
      } else {
        GemmAccF16W(x, w, y, m, k, n, ctx);
      }
      return y;
    }
    case KernelUnderTest::kGemvAccF16W: {
      const int k = 300, n = 157;
      auto x = RandomGaussianVector(static_cast<std::size_t>(k), 1.0f, rng);
      auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 0.1f,
                                     rng);
      std::vector<f16> w(wf.size());
      for (std::size_t i = 0; i < wf.size(); ++i) w[i] = f16(wf[i]);
      std::vector<float> y(static_cast<std::size_t>(n), -0.5f);
      GemvAccF16W(x, w, y, k, n, ctx);
      return y;
    }
    case KernelUnderTest::kSgmvShrink:
    case KernelUnderTest::kSgmvExpand: {
      const bool expand = kernel == KernelUnderTest::kSgmvExpand;
      const int h_in = expand ? 16 : 517, h_out = expand ? 517 : 16;
      std::vector<std::int32_t> seg = {0, 3, 3, 7};  // one empty segment
      Tensor<f16> w1({h_in, h_out}), w2({h_in, h_out});
      for (auto& v : w1.data()) {
        v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
      }
      for (auto& v : w2.data()) {
        v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
      }
      std::vector<const f16*> ptrs = {w1.raw(), nullptr, w2.raw()};
      auto x = RandomGaussianVector(7 * static_cast<std::size_t>(h_in), 1.0f,
                                    rng);
      std::vector<float> y(7 * static_cast<std::size_t>(h_out), 0.125f);
      SgmvArgs args{y, x, ptrs, seg, h_in, h_out};
      if (expand) {
        SgmvExpand(args, ctx);
      } else {
        SgmvShrink(args, ctx);
      }
      return y;
    }
    case KernelUnderTest::kPrefillAttention:
    case KernelUnderTest::kDecodeAttention: {
      LlamaConfig c = TinyLlama();
      KvCacheConfig kvc{.num_layers = 1,
                        .num_kv_heads = c.num_kv_heads,
                        .head_dim = c.head_dim(),
                        .page_size = 16,
                        .num_pages = 64};
      PagedKvCache kv(kvc);
      const std::int64_t len = 37;
      SeqId s = kv.CreateSequence();
      kv.Extend(s, len);
      for (std::int64_t pos = 0; pos < len; ++pos) {
        for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
          auto e = kv.Entry(s, 0, pos, slot);
          for (auto& v : e) {
            v = f16(static_cast<float>(rng.NextGaussian()) * 0.3f);
          }
        }
      }
      std::size_t width = static_cast<std::size_t>(c.num_heads) *
                          static_cast<std::size_t>(c.head_dim());
      if (kernel == KernelUnderTest::kDecodeAttention) {
        std::vector<SeqId> seqs = {s};
        auto q = RandomGaussianVector(width, 1.0f, rng);
        std::vector<float> out(width);
        BatchDecodeAttention(c, kv, seqs, 0, q, out, ctx);
        return out;
      }
      const std::int64_t chunk = 5;
      auto q = RandomGaussianVector(static_cast<std::size_t>(chunk) * width,
                                    1.0f, rng);
      std::vector<float> out(q.size());
      BatchPrefillAttention(c, kv, s, 0, len - chunk, q, out, ctx);
      return out;
    }
  }
  return {};
}

class SimdKernelEquivalenceTest
    : public ::testing::TestWithParam<KernelUnderTest> {};

TEST_P(SimdKernelEquivalenceTest, ScalarVsNativeWithinTolerance) {
  if (!NativeSimdAvailable()) GTEST_SKIP() << "native SIMD unavailable";
  std::vector<float> scalar_out, native_out;
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    scalar_out = RunKernel(GetParam());
  }
  {
    ScopedSimdLevel guard(SimdLevel::kNative);
    native_out = RunKernel(GetParam());
  }
  ASSERT_FALSE(scalar_out.empty());
  ASSERT_EQ(scalar_out.size(), native_out.size());
  for (std::size_t i = 0; i < scalar_out.size(); ++i) {
    ASSERT_PRED2(WithinPathTolerance, scalar_out[i], native_out[i])
        << KernelName(GetParam()) << " element " << i;
  }
}

TEST_P(SimdKernelEquivalenceTest, EachPathBitStableAcrossRuns) {
  // Within one dispatch path a kernel must be a pure function — rerunning
  // it (on a pool, with its own task interleaving) reproduces every bit.
  auto a = RunKernel(GetParam());
  auto b = RunKernel(GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << KernelName(GetParam()) << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SimdKernelEquivalenceTest,
    ::testing::Values(KernelUnderTest::kGemmSetF16W,
                      KernelUnderTest::kGemmAccF16W,
                      KernelUnderTest::kGemmSetF32,
                      KernelUnderTest::kGemvAccF16W,
                      KernelUnderTest::kSgmvShrink,
                      KernelUnderTest::kSgmvExpand,
                      KernelUnderTest::kPrefillAttention,
                      KernelUnderTest::kDecodeAttention),
    [](const ::testing::TestParamInfo<KernelUnderTest>& info) {
      return std::string(KernelName(info.param));
    });

}  // namespace
}  // namespace punica
