// The SIMD dispatch seam: level resolution/override, bit-exactness of the
// f16<->f32 bulk conversions and groupwise dequant across paths, and the
// scalar-vs-vector kernel-equivalence suite with the documented tolerance
// (bit-identical where no FMA reassociation is involved, bounded
// FMA-contraction drift elsewhere). Every compiled-and-runnable level is
// swept; when the vector TUs aren't compiled in (or the CPU lacks the
// feature set), the cross-path tests skip — the Release CI job builds with
// -DPUNICA_NATIVE_SIMD=ON so they run there.
#include "tensor/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/sgmv.h"
#include "kvcache/kvcache.h"
#include "model/attention.h"
#include "model/config.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/compute_context.h"
#include "util/rng.h"

namespace punica {
namespace {

bool IsNanHalf(std::uint16_t bits) {
  return (bits & 0x7C00U) == 0x7C00U && (bits & 0x3FFUL) != 0;
}

/// Every level that can actually run on this build+CPU, ascending.
std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> out;
  for (int l = 0; l < kNumSimdLevels; ++l) {
    auto level = static_cast<SimdLevel>(l);
    if (SimdLevelAvailable(level)) out.push_back(level);
  }
  return out;
}

/// Vector levels (everything above scalar) that can run here.
std::vector<SimdLevel> AvailableVectorLevels() {
  auto levels = AvailableLevels();
  levels.erase(levels.begin());  // scalar is always index 0
  return levels;
}

TEST(SimdDispatchTest, ScalarAlwaysSelectable) {
  ScopedSimdLevel guard(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(Simd().name, "scalar");
}

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx512), "avx512");
}

TEST(SimdDispatchTest, SetSimdLevelReturnsPrevious) {
  SimdLevel ambient = ActiveSimdLevel();
  SimdLevel prev = SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(prev, ambient);
  EXPECT_EQ(SetSimdLevel(ambient), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), ambient);
}

TEST(SimdDispatchTest, AvailabilityImpliesCompiled) {
  for (int l = 0; l < kNumSimdLevels; ++l) {
    auto level = static_cast<SimdLevel>(l);
    if (SimdLevelAvailable(level)) EXPECT_TRUE(SimdLevelCompiled(level));
  }
}

TEST(SimdDispatchTest, BestLevelIsTheHighestAvailable) {
  EXPECT_TRUE(SimdLevelAvailable(BestSimdLevel()));
  for (int l = static_cast<int>(BestSimdLevel()) + 1; l < kNumSimdLevels;
       ++l) {
    EXPECT_FALSE(SimdLevelAvailable(static_cast<SimdLevel>(l)));
  }
}

TEST(SimdDispatchTest, RequestsDegradeToNearestAvailableLevel) {
  // Requesting any level resolves to the highest available level at or
  // below it — the PUNICA_SIMD=avx512-on-an-avx2-box case degrades
  // silently rather than crashing.
  for (int req = 0; req < kNumSimdLevels; ++req) {
    SimdLevel expected = SimdLevel::kScalar;
    for (int l = req; l > 0; --l) {
      if (SimdLevelAvailable(static_cast<SimdLevel>(l))) {
        expected = static_cast<SimdLevel>(l);
        break;
      }
    }
    ScopedSimdLevel guard(static_cast<SimdLevel>(req));
    EXPECT_EQ(ActiveSimdLevel(), expected) << "requested level " << req;
    EXPECT_STREQ(Simd().name, SimdLevelName(expected));
  }
}

// --- Conversion bit-exactness across dispatch paths ---

TEST(SimdConversionTest, HalfToFloatBitIdenticalForAllNonNanPatterns) {
  if (AvailableVectorLevels().empty()) GTEST_SKIP() << "no vector SIMD";
  std::vector<f16> src;
  src.reserve(1 << 16);
  for (std::uint32_t bits = 0; bits < (1U << 16); ++bits) {
    auto b16 = static_cast<std::uint16_t>(bits);
    // NaN payload handling is the one documented divergence (hardware
    // quiets signalling NaNs); no kernel produces or consumes NaN halves.
    if (IsNanHalf(b16)) continue;
    src.push_back(f16::FromBits(b16));
  }
  std::vector<float> scalar_out(src.size());
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    HalfToFloatN(src, std::span<float>(scalar_out));
  }
  for (SimdLevel level : AvailableVectorLevels()) {
    std::vector<float> vec_out(src.size());
    ScopedSimdLevel guard(level);
    HalfToFloatN(src, std::span<float>(vec_out));
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(scalar_out[i]),
                std::bit_cast<std::uint32_t>(vec_out[i]))
          << SimdLevelName(level) << ": half bits 0x" << std::hex
          << src[i].bits();
    }
  }
}

TEST(SimdConversionTest, FloatToHalfBitIdenticalAcrossPaths) {
  if (AvailableVectorLevels().empty()) GTEST_SKIP() << "no vector SIMD";
  // Every rounding regime: exact halves, perturbed neighbours (round up /
  // down / to-even ties), fp16 subnormals, underflow, overflow, ±0, ±inf.
  std::vector<float> src;
  for (std::uint32_t bits = 0; bits < (1U << 16); ++bits) {
    auto b16 = static_cast<std::uint16_t>(bits);
    if (IsNanHalf(b16)) continue;
    float v = f16::FromBits(b16).ToFloat();
    src.push_back(v);
    std::uint32_t f32 = std::bit_cast<std::uint32_t>(v);
    // Nudge the fp32 mantissa around the value so the dropped-bit patterns
    // cover above/below/at the rounding boundary.
    for (std::uint32_t delta : {1U, 0x1000U, 0x1FFFU, 0x2000U, 0x2001U}) {
      src.push_back(std::bit_cast<float>(f32 + delta));
      src.push_back(std::bit_cast<float>(f32 ^ delta));
    }
  }
  Pcg32 rng(123);
  for (int i = 0; i < 4096; ++i) {
    src.push_back(static_cast<float>(rng.NextGaussian()) * 100.0f);
  }
  // Drop NaNs produced by nudging infinity's bit pattern.
  std::erase_if(src, [](float v) { return std::isnan(v); });

  std::vector<f16> scalar_out(src.size());
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    FloatToHalfN(src, std::span<f16>(scalar_out));
  }
  for (SimdLevel level : AvailableVectorLevels()) {
    std::vector<f16> vec_out(src.size());
    ScopedSimdLevel guard(level);
    FloatToHalfN(src, std::span<f16>(vec_out));
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_EQ(scalar_out[i].bits(), vec_out[i].bits())
          << SimdLevelName(level) << ": float " << src[i] << " (bits 0x"
          << std::hex << std::bit_cast<std::uint32_t>(src[i]) << ")";
    }
  }
}

TEST(SimdConversionTest, OddLengthsExerciseVectorBodyAndTail) {
  // Lengths straddling the 8- and 16-lane widths, on every available path.
  Pcg32 rng(9);
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    for (std::size_t n : {0U, 1U, 7U, 8U, 9U, 15U, 16U, 17U, 31U, 33U}) {
      auto xs = RandomGaussianVector(n, 2.0f, rng);
      std::vector<f16> h(n);
      std::vector<float> back(n);
      FloatToHalfN(xs, std::span<f16>(h));
      HalfToFloatN(h, std::span<float>(back));
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(h[i].bits(), FloatToHalfBits(xs[i]))
            << SimdLevelName(level) << " " << n << ":" << i;
        ASSERT_EQ(back[i], f16::FromBits(h[i].bits()).ToFloat());
      }
    }
  }
}

// --- Groupwise dequant bit-exactness across dispatch paths ---
//
// int8/int4 code × f16 scale is exact in f32 arithmetic (≤7+11 significand
// bits), so dequant output must be bit-identical on every path — including
// block tails when n is not a multiple of kQuantBlock.

TEST(SimdQuantTest, DequantQ8BitIdenticalAcrossPaths) {
  Pcg32 rng(31);
  for (std::size_t n : {1U, 31U, 32U, 33U, 64U, 97U, 256U}) {
    auto xs = RandomGaussianVector(n, 3.0f, rng);
    std::vector<BlockQ8_0> blocks(QuantBlocksPerRow(
        static_cast<std::int64_t>(n)));
    QuantizeRowQ8(xs, blocks.data());
    std::vector<float> ref(n);
    {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      Simd().dequant_q8(blocks.data(), ref.data(), n);
    }
    std::vector<float> ref2(n);
    DequantRowQ8Ref(blocks.data(), ref2);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(ref[i], ref2[i]);
    for (SimdLevel level : AvailableVectorLevels()) {
      std::vector<float> out(n);
      ScopedSimdLevel guard(level);
      Simd().dequant_q8(blocks.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(ref[i]),
                  std::bit_cast<std::uint32_t>(out[i]))
            << SimdLevelName(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdQuantTest, DequantQ4BitIdenticalAcrossPaths) {
  Pcg32 rng(32);
  for (std::size_t n : {1U, 15U, 16U, 17U, 31U, 32U, 33U, 96U, 257U}) {
    auto xs = RandomGaussianVector(n, 3.0f, rng);
    std::vector<BlockQ4_0> blocks(QuantBlocksPerRow(
        static_cast<std::int64_t>(n)));
    QuantizeRowQ4(xs, blocks.data());
    std::vector<float> ref(n);
    {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      Simd().dequant_q4(blocks.data(), ref.data(), n);
    }
    std::vector<float> ref2(n);
    DequantRowQ4Ref(blocks.data(), ref2);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(ref[i], ref2[i]);
    for (SimdLevel level : AvailableVectorLevels()) {
      std::vector<float> out(n);
      ScopedSimdLevel guard(level);
      Simd().dequant_q4(blocks.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(ref[i]),
                  std::bit_cast<std::uint32_t>(out[i]))
            << SimdLevelName(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

// --- Scalar-vs-vector kernel equivalence ---
//
// Documented cross-path tolerance: the vector paths fuse each
// multiply-accumulate (no separate rounding of the product) and the dot
// kernels reduce their lane accumulators in a fixed order, so outputs
// drift by at most a few ULPs per reduction term. The bound below is loose
// against that model and tight against a real bug (a wrong element, stripe
// or sign is orders of magnitude larger). The quant kernels compare the
// SAME quantized blocks across paths, so quantization error cancels and
// only FMA-contraction drift remains.
constexpr float kPathTolerance = 2e-4f;

bool WithinPathTolerance(float a, float b) {
  return std::abs(a - b) <= kPathTolerance * (1.0f + std::abs(a) +
                                              std::abs(b));
}

enum class KernelUnderTest {
  kGemmSetF16W,
  kGemmAccF16W,
  kGemmSetF32,
  kGemvAccF16W,
  kGemmSetQ8W,
  kGemmAccQ8W,
  kGemvAccQ8W,
  kGemmSetQ4W,
  kGemmAccQ4W,
  kGemvAccQ4W,
  kSgmvShrink,
  kSgmvExpand,
  kPrefillAttention,
  kDecodeAttention,
};

const char* KernelName(KernelUnderTest k) {
  switch (k) {
    case KernelUnderTest::kGemmSetF16W: return "GemmSetF16W";
    case KernelUnderTest::kGemmAccF16W: return "GemmAccF16W";
    case KernelUnderTest::kGemmSetF32: return "GemmSetF32";
    case KernelUnderTest::kGemvAccF16W: return "GemvAccF16W";
    case KernelUnderTest::kGemmSetQ8W: return "GemmSetQ8W";
    case KernelUnderTest::kGemmAccQ8W: return "GemmAccQ8W";
    case KernelUnderTest::kGemvAccQ8W: return "GemvAccQ8W";
    case KernelUnderTest::kGemmSetQ4W: return "GemmSetQ4W";
    case KernelUnderTest::kGemmAccQ4W: return "GemmAccQ4W";
    case KernelUnderTest::kGemvAccQ4W: return "GemvAccQ4W";
    case KernelUnderTest::kSgmvShrink: return "SgmvShrink";
    case KernelUnderTest::kSgmvExpand: return "SgmvExpand";
    case KernelUnderTest::kPrefillAttention: return "PrefillAttention";
    case KernelUnderTest::kDecodeAttention: return "DecodeAttention";
  }
  return "?";
}

/// Builds a quantized weight matrix from a seeded f16 draw.
WeightMatrix MakeQuantWeights(std::int64_t k, std::int64_t n,
                              WeightDtype dtype, Pcg32& rng) {
  Tensor<f16> w({k, n});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.1f);
  }
  return WeightMatrix::FromF16(std::move(w), dtype);
}

// Runs one kernel on a fixed seeded problem (shapes straddle the tile and
// lane widths) and returns its full output vector.
std::vector<float> RunKernel(KernelUnderTest kernel) {
  Pcg32 rng(2027);
  ComputeContext ctx({.num_threads = 2});
  switch (kernel) {
    case KernelUnderTest::kGemmSetF16W:
    case KernelUnderTest::kGemmAccF16W:
    case KernelUnderTest::kGemmSetF32: {
      const int m = 9, k = 67, n = 131;
      auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f,
                                    rng);
      auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 0.1f,
                                     rng);
      std::vector<float> y(static_cast<std::size_t>(m) * n, 0.25f);
      if (kernel == KernelUnderTest::kGemmSetF32) {
        GemmSet(x, wf, y, m, k, n, ctx);
        return y;
      }
      std::vector<f16> w(wf.size());
      for (std::size_t i = 0; i < wf.size(); ++i) w[i] = f16(wf[i]);
      if (kernel == KernelUnderTest::kGemmSetF16W) {
        GemmSetF16W(x, w, y, m, k, n, ctx);
      } else {
        GemmAccF16W(x, w, y, m, k, n, ctx);
      }
      return y;
    }
    case KernelUnderTest::kGemvAccF16W: {
      const int k = 300, n = 157;
      auto x = RandomGaussianVector(static_cast<std::size_t>(k), 1.0f, rng);
      auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 0.1f,
                                     rng);
      std::vector<f16> w(wf.size());
      for (std::size_t i = 0; i < wf.size(); ++i) w[i] = f16(wf[i]);
      std::vector<float> y(static_cast<std::size_t>(n), -0.5f);
      GemvAccF16W(x, w, y, k, n, ctx);
      return y;
    }
    case KernelUnderTest::kGemmSetQ8W:
    case KernelUnderTest::kGemmAccQ8W:
    case KernelUnderTest::kGemmSetQ4W:
    case KernelUnderTest::kGemmAccQ4W: {
      // n deliberately not a multiple of kQuantBlock: the last block of
      // every stripe row is a padded tail.
      const int m = 9, k = 67, n = 131;
      const bool q8 = kernel == KernelUnderTest::kGemmSetQ8W ||
                      kernel == KernelUnderTest::kGemmAccQ8W;
      const bool set = kernel == KernelUnderTest::kGemmSetQ8W ||
                       kernel == KernelUnderTest::kGemmSetQ4W;
      auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f,
                                    rng);
      WeightMatrix w = MakeQuantWeights(
          k, n, q8 ? WeightDtype::kQ8_0 : WeightDtype::kQ4_0, rng);
      std::vector<float> y(static_cast<std::size_t>(m) * n, 0.25f);
      if (set) {
        GemmSetW(x, w, y, m, k, n, ctx);
      } else {
        GemmAccW(x, w, y, m, k, n, ctx);
      }
      return y;
    }
    case KernelUnderTest::kGemvAccQ8W:
    case KernelUnderTest::kGemvAccQ4W: {
      const int k = 300, n = 157;
      const bool q8 = kernel == KernelUnderTest::kGemvAccQ8W;
      auto x = RandomGaussianVector(static_cast<std::size_t>(k), 1.0f, rng);
      WeightMatrix w = MakeQuantWeights(
          k, n, q8 ? WeightDtype::kQ8_0 : WeightDtype::kQ4_0, rng);
      std::vector<float> y(static_cast<std::size_t>(n), -0.5f);
      GemvAccW(x, w, y, k, n, ctx);
      return y;
    }
    case KernelUnderTest::kSgmvShrink:
    case KernelUnderTest::kSgmvExpand: {
      const bool expand = kernel == KernelUnderTest::kSgmvExpand;
      const int h_in = expand ? 16 : 517, h_out = expand ? 517 : 16;
      std::vector<std::int32_t> seg = {0, 3, 3, 7};  // one empty segment
      Tensor<f16> w1({h_in, h_out}), w2({h_in, h_out});
      for (auto& v : w1.data()) {
        v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
      }
      for (auto& v : w2.data()) {
        v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
      }
      std::vector<const f16*> ptrs = {w1.raw(), nullptr, w2.raw()};
      auto x = RandomGaussianVector(7 * static_cast<std::size_t>(h_in), 1.0f,
                                    rng);
      std::vector<float> y(7 * static_cast<std::size_t>(h_out), 0.125f);
      SgmvArgs args{y, x, ptrs, seg, h_in, h_out};
      if (expand) {
        SgmvExpand(args, ctx);
      } else {
        SgmvShrink(args, ctx);
      }
      return y;
    }
    case KernelUnderTest::kPrefillAttention:
    case KernelUnderTest::kDecodeAttention: {
      LlamaConfig c = TinyLlama();
      KvCacheConfig kvc{.num_layers = 1,
                        .num_kv_heads = c.num_kv_heads,
                        .head_dim = c.head_dim(),
                        .page_size = 16,
                        .num_pages = 64};
      PagedKvCache kv(kvc);
      const std::int64_t len = 37;
      SeqId s = kv.CreateSequence();
      kv.Extend(s, len);
      for (std::int64_t pos = 0; pos < len; ++pos) {
        for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
          auto e = kv.Entry(s, 0, pos, slot);
          for (auto& v : e) {
            v = f16(static_cast<float>(rng.NextGaussian()) * 0.3f);
          }
        }
      }
      std::size_t width = static_cast<std::size_t>(c.num_heads) *
                          static_cast<std::size_t>(c.head_dim());
      if (kernel == KernelUnderTest::kDecodeAttention) {
        std::vector<SeqId> seqs = {s};
        auto q = RandomGaussianVector(width, 1.0f, rng);
        std::vector<float> out(width);
        BatchDecodeAttention(c, kv, seqs, 0, q, out, ctx);
        return out;
      }
      const std::int64_t chunk = 5;
      auto q = RandomGaussianVector(static_cast<std::size_t>(chunk) * width,
                                    1.0f, rng);
      std::vector<float> out(q.size());
      BatchPrefillAttention(c, kv, s, 0, len - chunk, q, out, ctx);
      return out;
    }
  }
  return {};
}

class SimdKernelEquivalenceTest
    : public ::testing::TestWithParam<KernelUnderTest> {};

TEST_P(SimdKernelEquivalenceTest, ScalarVsEachVectorLevelWithinTolerance) {
  if (AvailableVectorLevels().empty()) GTEST_SKIP() << "no vector SIMD";
  std::vector<float> scalar_out;
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    scalar_out = RunKernel(GetParam());
  }
  ASSERT_FALSE(scalar_out.empty());
  for (SimdLevel level : AvailableVectorLevels()) {
    std::vector<float> vec_out;
    {
      ScopedSimdLevel guard(level);
      vec_out = RunKernel(GetParam());
    }
    ASSERT_EQ(scalar_out.size(), vec_out.size());
    for (std::size_t i = 0; i < scalar_out.size(); ++i) {
      ASSERT_PRED2(WithinPathTolerance, scalar_out[i], vec_out[i])
          << KernelName(GetParam()) << " on " << SimdLevelName(level)
          << " element " << i;
    }
  }
}

TEST_P(SimdKernelEquivalenceTest, EachPathBitStableAcrossRuns) {
  // Within one dispatch path a kernel must be a pure function — rerunning
  // it (on a pool, with its own task interleaving) reproduces every bit.
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    auto a = RunKernel(GetParam());
    auto b = RunKernel(GetParam());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << KernelName(GetParam()) << " on "
                            << SimdLevelName(level) << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SimdKernelEquivalenceTest,
    ::testing::Values(KernelUnderTest::kGemmSetF16W,
                      KernelUnderTest::kGemmAccF16W,
                      KernelUnderTest::kGemmSetF32,
                      KernelUnderTest::kGemvAccF16W,
                      KernelUnderTest::kGemmSetQ8W,
                      KernelUnderTest::kGemmAccQ8W,
                      KernelUnderTest::kGemvAccQ8W,
                      KernelUnderTest::kGemmSetQ4W,
                      KernelUnderTest::kGemmAccQ4W,
                      KernelUnderTest::kGemvAccQ4W,
                      KernelUnderTest::kSgmvShrink,
                      KernelUnderTest::kSgmvExpand,
                      KernelUnderTest::kPrefillAttention,
                      KernelUnderTest::kDecodeAttention),
    [](const ::testing::TestParamInfo<KernelUnderTest>& info) {
      return std::string(KernelName(info.param));
    });

}  // namespace
}  // namespace punica
