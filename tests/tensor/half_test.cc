#include "tensor/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/rng.h"

namespace punica {
namespace {

TEST(HalfTest, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in fp16.
  for (int i = -2048; i <= 2048; ++i) {
    f16 h(static_cast<float>(i));
    EXPECT_EQ(h.ToFloat(), static_cast<float>(i)) << i;
  }
}

TEST(HalfTest, KnownBitPatterns) {
  EXPECT_EQ(f16(0.0f).bits(), 0x0000);
  EXPECT_EQ(f16(-0.0f).bits(), 0x8000);
  EXPECT_EQ(f16(1.0f).bits(), 0x3C00);
  EXPECT_EQ(f16(-1.0f).bits(), 0xBC00);
  EXPECT_EQ(f16(2.0f).bits(), 0x4000);
  EXPECT_EQ(f16(0.5f).bits(), 0x3800);
  EXPECT_EQ(f16(65504.0f).bits(), 0x7BFF);  // max finite
}

TEST(HalfTest, OverflowBecomesInfinity) {
  EXPECT_EQ(f16(65536.0f).bits(), 0x7C00);
  EXPECT_EQ(f16(-65536.0f).bits(), 0xFC00);
  EXPECT_EQ(f16(1e30f).bits(), 0x7C00);
  EXPECT_TRUE(std::isinf(f16(1e30f).ToFloat()));
}

TEST(HalfTest, InfinityAndNanRoundTrip) {
  float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f16(inf).bits(), 0x7C00);
  EXPECT_EQ(f16(-inf).bits(), 0xFC00);
  float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(f16(nan).ToFloat()));
}

TEST(HalfTest, SubnormalsRepresentable) {
  // Smallest positive subnormal fp16: 2^-24.
  float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(f16(tiny).bits(), 0x0001);
  EXPECT_EQ(f16(tiny).ToFloat(), tiny);
  // Largest subnormal: (1023/1024) · 2^-14.
  float sub = std::ldexp(1023.0f / 1024.0f, -14);
  EXPECT_EQ(f16(sub).bits(), 0x03FF);
  EXPECT_EQ(f16(sub).ToFloat(), sub);
}

TEST(HalfTest, UnderflowToZero) {
  EXPECT_EQ(f16(std::ldexp(1.0f, -26)).bits(), 0x0000);
  EXPECT_EQ(f16(-std::ldexp(1.0f, -26)).bits(), 0x8000);
}

TEST(HalfTest, RoundToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between 1.0 and the next fp16 value;
  // round-to-even keeps 1.0 (even mantissa).
  float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(f16(halfway).bits(), 0x3C00);
  // (1 + 2^-10) + 2^-11 is halfway with an odd mantissa below: rounds up.
  float halfway_odd = 1.0f + std::ldexp(1.0f, -10) + std::ldexp(1.0f, -11);
  EXPECT_EQ(f16(halfway_odd).bits(), 0x3C02);
}

TEST(HalfTest, AllBitPatternsRoundTripThroughFloat) {
  // Every finite fp16 value must survive f16 → float → f16 exactly.
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    auto b16 = static_cast<std::uint16_t>(bits);
    f16 h = f16::FromBits(b16);
    float f = h.ToFloat();
    if (std::isnan(f)) continue;  // NaN payloads may canonicalise
    EXPECT_EQ(f16(f).bits(), b16) << "bits=" << bits;
  }
}

TEST(HalfTest, RoundTripErrorWithinHalfUlp) {
  Pcg32 rng(42);
  for (int i = 0; i < 10000; ++i) {
    float x = rng.NextFloat(-1000.0f, 1000.0f);
    float back = f16(x).ToFloat();
    EXPECT_LE(std::abs(back - x), std::abs(x) * kF16Epsilon + 1e-7f) << x;
  }
}

TEST(HalfTest, EqualityComparesBits) {
  EXPECT_TRUE(f16(1.5f) == f16(1.5f));
  EXPECT_FALSE(f16(0.0f) == f16(-0.0f));  // distinct bit patterns
}

}  // namespace
}  // namespace punica
