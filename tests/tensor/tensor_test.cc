#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/half.h"

namespace punica {
namespace {

TEST(TensorTest, ShapeAndNumel) {
  Tensor<float> t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(2), 4);
}

TEST(TensorTest, DefaultIsEmpty) {
  Tensor<float> t;
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.ndim(), 0u);
}

TEST(TensorTest, ZeroInitialised) {
  Tensor<float> t({4, 4});
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, AtIndexingRowMajor) {
  Tensor<float> t({2, 3});
  t.at({0, 0}) = 1.0f;
  t.at({0, 2}) = 2.0f;
  t.at({1, 0}) = 3.0f;
  t.at({1, 2}) = 4.0f;
  auto d = t.data();
  EXPECT_EQ(d[0], 1.0f);
  EXPECT_EQ(d[2], 2.0f);
  EXPECT_EQ(d[3], 3.0f);
  EXPECT_EQ(d[5], 4.0f);
}

TEST(TensorTest, RowView) {
  Tensor<float> t({3, 4});
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(i);
  }
  auto row1 = t.row(1);
  ASSERT_EQ(row1.size(), 4u);
  EXPECT_EQ(row1[0], 4.0f);
  EXPECT_EQ(row1[3], 7.0f);
  // Row views alias storage.
  row1[0] = 99.0f;
  EXPECT_EQ(t.at({1, 0}), 99.0f);
}

TEST(TensorTest, ConstRowView) {
  Tensor<float> t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor<float>& ct = t;
  auto row = ct.row(1);
  EXPECT_EQ(row[0], 3.0f);
  EXPECT_EQ(row[1], 4.0f);
}

TEST(TensorTest, FromDataVector) {
  Tensor<float> t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(TensorTest, Fill) {
  Tensor<float> t({5});
  t.Fill(2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, ZeroDimensionAllowed) {
  Tensor<float> t({0, 7});
  EXPECT_EQ(t.numel(), 0u);
}

TEST(TensorTest, HalfTensorStorageSize) {
  Tensor<f16> t({128, 16});
  EXPECT_EQ(t.numel() * sizeof(f16), 4096u);
}

TEST(TensorDeathTest, OutOfRangeAborts) {
  Tensor<float> t({2, 2});
  EXPECT_DEATH(t.at({2, 0}), "PUNICA_CHECK");
  EXPECT_DEATH(t.row(5), "PUNICA_CHECK");
}

TEST(TensorDeathTest, MismatchedDataSizeAborts) {
  EXPECT_DEATH((Tensor<float>({2, 2}, {1.0f})), "PUNICA_CHECK");
}

}  // namespace
}  // namespace punica
