#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/simd.h"
#include "util/rng.h"

namespace punica {
namespace {

std::vector<f16> ToHalf(const std::vector<float>& xs) {
  std::vector<f16> out;
  out.reserve(xs.size());
  for (float x : xs) out.emplace_back(x);
  return out;
}

TEST(GemmTest, KnownSmallProduct) {
  // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
  std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> w = {5, 6, 7, 8};
  std::vector<float> y(4);
  GemmSet(x, w, y, 2, 2, 2);
  EXPECT_FLOAT_EQ(y[0], 19.0f);
  EXPECT_FLOAT_EQ(y[1], 22.0f);
  EXPECT_FLOAT_EQ(y[2], 43.0f);
  EXPECT_FLOAT_EQ(y[3], 50.0f);
}

TEST(GemmTest, IdentityWeight) {
  std::vector<float> x = {1, 2, 3, 4, 5, 6};
  std::vector<float> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<float> y(6);
  GemmSet(x, eye, y, 2, 3, 3);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(GemmTest, GemmSetOverwritesStaleY) {
  // The Set/Acc naming trap: GemmSet must not accumulate into garbage.
  std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> w = {5, 6, 7, 8};
  std::vector<float> y = {1e9f, -1e9f, 1e9f, -1e9f};
  GemmSet(x, w, y, 2, 2, 2);
  EXPECT_FLOAT_EQ(y[0], 19.0f);
  EXPECT_FLOAT_EQ(y[3], 50.0f);
}

TEST(GemmTest, GemmAccF16WAccumulates) {
  std::vector<float> x = {1, 1};
  std::vector<f16> w = ToHalf({2, 3});  // [2,1] weight
  std::vector<float> y = {10.0f};
  GemmAccF16W(x, w, y, 1, 2, 1);
  EXPECT_FLOAT_EQ(y[0], 15.0f);
}

TEST(GemmTest, GemvMatchesGemmRowByRow) {
  Pcg32 rng(7);
  int m = 5, k = 17, n = 9;
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 1.0f, rng);
  auto w = ToHalf(wf);

  std::vector<float> y_gemm(static_cast<std::size_t>(m) * n, 0.0f);
  GemmAccF16W(x, w, y_gemm, m, k, n);

  std::vector<float> y_gemv(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    GemvAccF16W(std::span<const float>(x).subspan(
                    static_cast<std::size_t>(i) * k, k),
                w,
                std::span<float>(y_gemv).subspan(
                    static_cast<std::size_t>(i) * n, n),
                k, n);
  }
  for (std::size_t i = 0; i < y_gemm.size(); ++i) {
    EXPECT_FLOAT_EQ(y_gemm[i], y_gemv[i]);
  }
}

// --- Edge-case shapes for the blocked kernels ---

TEST(GemmEdgeTest, ZeroRows) {
  std::vector<float> x, w(6, 1.0f), y;
  GemmSet(x, w, y, 0, 2, 3);  // no output, must not touch anything
  std::vector<f16> wh(6, f16(1.0f));
  GemmAccF16W(x, wh, y, 0, 2, 3);
}

TEST(GemmEdgeTest, ZeroReductionDim) {
  // k == 0: GemmSet must still zero y; GemmAcc must leave y untouched.
  std::vector<float> x, w;
  std::vector<float> y = {3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f};
  GemmSet(x, w, y, 2, 0, 3);
  for (float v : y) EXPECT_FLOAT_EQ(v, 0.0f);

  std::vector<f16> wh;
  std::vector<float> y2 = {3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f};
  GemmAccF16W(x, wh, y2, 2, 0, 3);
  EXPECT_FLOAT_EQ(y2[0], 3.0f);
  EXPECT_FLOAT_EQ(y2[5], 8.0f);
}

TEST(GemmEdgeTest, SingleColumn) {
  Pcg32 rng(13);
  int m = 7, k = 31;
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  auto wf = RandomGaussianVector(static_cast<std::size_t>(k), 1.0f, rng);
  auto w = ToHalf(wf);
  std::vector<float> y(static_cast<std::size_t>(m), 0.0f);
  GemmAccF16W(x, w, y, m, k, 1);
  for (int i = 0; i < m; ++i) {
    float ref = 0.0f;
    for (int p = 0; p < k; ++p) {
      ref += x[static_cast<std::size_t>(i) * k + p] * w[p].ToFloat();
    }
    EXPECT_FLOAT_EQ(y[static_cast<std::size_t>(i)], ref);
  }
}

TEST(GemmEdgeTest, NonMultipleOfTileSizes) {
  // m, k, n all straddle the row-block/column-tile boundaries.
  Pcg32 rng(17);
  int m = 9, k = 130, n = 257;
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 0.1f, rng);
  auto w = ToHalf(wf);
  // Naive reference with the same ascending-k order.
  std::vector<float> ref(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      float xv = x[static_cast<std::size_t>(i) * k + p];
      for (int j = 0; j < n; ++j) {
        ref[static_cast<std::size_t>(i) * n + j] +=
            xv * w[static_cast<std::size_t>(p) * n + j].ToFloat();
      }
    }
  }
  {
    // Scalar dispatch runs exactly the reference's per-element operations —
    // results must be bit-identical, not just close.
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    std::vector<float> y(ref.size(), 0.0f);
    GemmAccF16W(x, w, y, m, k, n);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], ref[i]);
  }
  for (int l = 1; l < kNumSimdLevels; ++l) {
    auto level = static_cast<SimdLevel>(l);
    if (!SimdLevelAvailable(level)) continue;
    // Vector paths differ only by FMA contraction (one rounding per
    // multiply); the dispatch-seam tolerance is asserted tightly in
    // simd_test.cc.
    ScopedSimdLevel guard(level);
    std::vector<float> y(ref.size(), 0.0f);
    GemmAccF16W(x, w, y, m, k, n);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_NEAR(y[i], ref[i], 1e-4f * (1.0f + std::abs(ref[i])))
          << SimdLevelName(level);
    }
  }
}

TEST(GemmEdgeTest, BitIdenticalAcrossThreadCounts) {
  Pcg32 rng(19);
  int m = 13, k = 300, n = 191;
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 0.1f, rng);
  auto w = ToHalf(wf);
  ComputeContext ctx1({.num_threads = 1});
  ComputeContext ctx4({.num_threads = 4});
  std::vector<float> y1(static_cast<std::size_t>(m) * n, 0.5f);
  std::vector<float> y4 = y1;
  GemmAccF16W(x, w, y1, m, k, n, ctx1);
  GemmAccF16W(x, w, y4, m, k, n, ctx4);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y4[i]);

  std::vector<float> s1(y1.size()), s4(y1.size());
  auto w32 = RandomGaussianVector(static_cast<std::size_t>(k) * n, 0.1f, rng);
  GemmSet(x, w32, s1, m, k, n, ctx1);
  GemmSet(x, w32, s4, m, k, n, ctx4);
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i], s4[i]);
}

TEST(GemmTest, SoftmaxSumsToOne) {
  Pcg32 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    auto row = RandomGaussianVector(33, 5.0f, rng);
    SoftmaxInPlace(row);
    double sum = 0.0;
    for (float v : row) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(GemmTest, SoftmaxStableUnderLargeInputs) {
  std::vector<float> row = {1000.0f, 1000.0f, 1000.0f};
  SoftmaxInPlace(row);
  for (float v : row) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-6f);
}

TEST(GemmTest, SoftmaxMonotone) {
  std::vector<float> row = {0.0f, 1.0f, 2.0f};
  SoftmaxInPlace(row);
  EXPECT_LT(row[0], row[1]);
  EXPECT_LT(row[1], row[2]);
}

TEST(GemmTest, RmsNormUnitWeightPreservesDirection) {
  Pcg32 rng(3);
  auto x = RandomGaussianVector(64, 2.0f, rng);
  std::vector<f16> weight(64, f16(1.0f));
  std::vector<float> out(64);
  RmsNormRow(x, weight, out, 1e-5f);
  // Output should have RMS ≈ 1.
  double ss = 0.0;
  for (float v : out) ss += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(ss / 64.0), 1.0, 1e-3);
  // And preserve sign/ratios of the input.
  for (int i = 0; i < 64; ++i) {
    EXPECT_GT(out[i] * x[i], 0.0f);
  }
}

TEST(GemmTest, RmsNormAppliesWeight) {
  std::vector<float> x = {3.0f, 4.0f};
  std::vector<f16> weight = {f16(2.0f), f16(0.5f)};
  std::vector<float> out(2);
  RmsNormRow(x, weight, out, 0.0f);
  float rms = std::sqrt((9.0f + 16.0f) / 2.0f);
  EXPECT_NEAR(out[0], 3.0f / rms * 2.0f, 1e-4f);
  EXPECT_NEAR(out[1], 4.0f / rms * 0.5f, 1e-4f);
}

TEST(GemmTest, SiluKnownValues) {
  std::vector<float> xs = {0.0f, 100.0f, -100.0f, 1.0f};
  SiluInPlace(xs);
  EXPECT_FLOAT_EQ(xs[0], 0.0f);
  EXPECT_NEAR(xs[1], 100.0f, 1e-3f);   // sigmoid → 1
  EXPECT_NEAR(xs[2], 0.0f, 1e-3f);     // sigmoid → 0
  EXPECT_NEAR(xs[3], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
}

TEST(GemmDeathTest, ShapeMismatchAborts) {
  std::vector<float> x(4), w(4), y(3);
  EXPECT_DEATH(GemmSet(x, w, y, 2, 2, 2), "PUNICA_CHECK");
}

}  // namespace
}  // namespace punica
