#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

std::vector<f16> ToHalf(const std::vector<float>& xs) {
  std::vector<f16> out;
  out.reserve(xs.size());
  for (float x : xs) out.emplace_back(x);
  return out;
}

TEST(GemmTest, KnownSmallProduct) {
  // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
  std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> w = {5, 6, 7, 8};
  std::vector<float> y(4);
  Gemm(x, w, y, 2, 2, 2);
  EXPECT_FLOAT_EQ(y[0], 19.0f);
  EXPECT_FLOAT_EQ(y[1], 22.0f);
  EXPECT_FLOAT_EQ(y[2], 43.0f);
  EXPECT_FLOAT_EQ(y[3], 50.0f);
}

TEST(GemmTest, IdentityWeight) {
  std::vector<float> x = {1, 2, 3, 4, 5, 6};
  std::vector<float> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<float> y(6);
  Gemm(x, eye, y, 2, 3, 3);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(GemmTest, GemmAddF16WAccumulates) {
  std::vector<float> x = {1, 1};
  std::vector<f16> w = ToHalf({2, 3});  // [2,1] weight
  std::vector<float> y = {10.0f};
  GemmAddF16W(x, w, y, 1, 2, 1);
  EXPECT_FLOAT_EQ(y[0], 15.0f);
}

TEST(GemmTest, GemvMatchesGemmRowByRow) {
  Pcg32 rng(7);
  int m = 5, k = 17, n = 9;
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  auto wf = RandomGaussianVector(static_cast<std::size_t>(k) * n, 1.0f, rng);
  auto w = ToHalf(wf);

  std::vector<float> y_gemm(static_cast<std::size_t>(m) * n, 0.0f);
  GemmAddF16W(x, w, y_gemm, m, k, n);

  std::vector<float> y_gemv(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    GemvAddF16W(std::span<const float>(x).subspan(
                    static_cast<std::size_t>(i) * k, k),
                w,
                std::span<float>(y_gemv).subspan(
                    static_cast<std::size_t>(i) * n, n),
                k, n);
  }
  for (std::size_t i = 0; i < y_gemm.size(); ++i) {
    EXPECT_FLOAT_EQ(y_gemm[i], y_gemv[i]);
  }
}

TEST(GemmTest, SoftmaxSumsToOne) {
  Pcg32 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    auto row = RandomGaussianVector(33, 5.0f, rng);
    SoftmaxInPlace(row);
    double sum = 0.0;
    for (float v : row) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(GemmTest, SoftmaxStableUnderLargeInputs) {
  std::vector<float> row = {1000.0f, 1000.0f, 1000.0f};
  SoftmaxInPlace(row);
  for (float v : row) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-6f);
}

TEST(GemmTest, SoftmaxMonotone) {
  std::vector<float> row = {0.0f, 1.0f, 2.0f};
  SoftmaxInPlace(row);
  EXPECT_LT(row[0], row[1]);
  EXPECT_LT(row[1], row[2]);
}

TEST(GemmTest, RmsNormUnitWeightPreservesDirection) {
  Pcg32 rng(3);
  auto x = RandomGaussianVector(64, 2.0f, rng);
  std::vector<f16> weight(64, f16(1.0f));
  std::vector<float> out(64);
  RmsNormRow(x, weight, out, 1e-5f);
  // Output should have RMS ≈ 1.
  double ss = 0.0;
  for (float v : out) ss += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(ss / 64.0), 1.0, 1e-3);
  // And preserve sign/ratios of the input.
  for (int i = 0; i < 64; ++i) {
    EXPECT_GT(out[i] * x[i], 0.0f);
  }
}

TEST(GemmTest, RmsNormAppliesWeight) {
  std::vector<float> x = {3.0f, 4.0f};
  std::vector<f16> weight = {f16(2.0f), f16(0.5f)};
  std::vector<float> out(2);
  RmsNormRow(x, weight, out, 0.0f);
  float rms = std::sqrt((9.0f + 16.0f) / 2.0f);
  EXPECT_NEAR(out[0], 3.0f / rms * 2.0f, 1e-4f);
  EXPECT_NEAR(out[1], 4.0f / rms * 0.5f, 1e-4f);
}

TEST(GemmTest, SiluKnownValues) {
  std::vector<float> xs = {0.0f, 100.0f, -100.0f, 1.0f};
  SiluInPlace(xs);
  EXPECT_FLOAT_EQ(xs[0], 0.0f);
  EXPECT_NEAR(xs[1], 100.0f, 1e-3f);   // sigmoid → 1
  EXPECT_NEAR(xs[2], 0.0f, 1e-3f);     // sigmoid → 0
  EXPECT_NEAR(xs[3], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
}

TEST(GemmDeathTest, ShapeMismatchAborts) {
  std::vector<float> x(4), w(4), y(3);
  EXPECT_DEATH(Gemm(x, w, y, 2, 2, 2), "PUNICA_CHECK");
}

}  // namespace
}  // namespace punica
