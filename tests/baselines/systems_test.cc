#include "baselines/systems.h"

#include <gtest/gtest.h>

#include "gpu/specs.h"
#include "workload/trace.h"

namespace punica {
namespace {

std::vector<TraceRequest> SmallTrace(Popularity pop, int n = 60,
                                     std::uint64_t seed = 7) {
  TraceSpec spec;
  spec.num_requests = n;
  spec.popularity = pop;
  spec.seed = seed;
  // Short outputs keep the simulation fast.
  spec.lengths.output_mu = 3.0;   // median ~20 tokens
  spec.lengths.output_sigma = 0.6;
  spec.lengths.prompt_mu = 3.5;
  spec.lengths.prompt_sigma = 0.8;
  return GenerateClosedLoopTrace(spec);
}

TEST(SystemTraitsTest, CapabilityMatrix) {
  EXPECT_FALSE(TraitsOf(ServingSystem::kHuggingFace).continuous_batching);
  EXPECT_FALSE(TraitsOf(ServingSystem::kDeepSpeed).continuous_batching);
  EXPECT_FALSE(
      TraitsOf(ServingSystem::kFasterTransformer).continuous_batching);
  EXPECT_TRUE(TraitsOf(ServingSystem::kVllm).continuous_batching);
  EXPECT_TRUE(TraitsOf(ServingSystem::kPunica).continuous_batching);
  // Only Punica batches across LoRA models.
  for (auto s : kAllServingSystems) {
    EXPECT_EQ(TraitsOf(s).cross_lora_batching, s == ServingSystem::kPunica);
  }
  // Backbone-only relaxations.
  EXPECT_FALSE(TraitsOf(ServingSystem::kFasterTransformer).lora_compute);
  EXPECT_FALSE(TraitsOf(ServingSystem::kVllm).lora_compute);
  EXPECT_TRUE(TraitsOf(ServingSystem::kPunica).lora_compute);
}

TEST(SystemsTest, AllTokensGenerated) {
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kUniform);
  std::int64_t expected = TotalOutputTokens(trace);
  for (auto s : kAllServingSystems) {
    auto r = SimulateTextGen(s, trace, Llama7B(), cm);
    EXPECT_EQ(r.tokens_generated, expected) << r.system;
    EXPECT_GT(r.makespan_s, 0.0) << r.system;
    EXPECT_GT(r.throughput_tok_s, 0.0) << r.system;
  }
}

TEST(SystemsTest, PunicaWinsOnMultiLoraWorkloads) {
  CostModel cm((A100Sxm80GB()));
  for (auto pop : {Popularity::kDistinct, Popularity::kUniform,
                   Popularity::kSkewed}) {
    auto trace = SmallTrace(pop, 80);
    auto punica = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(),
                                  cm);
    for (auto s : {ServingSystem::kHuggingFace, ServingSystem::kDeepSpeed,
                   ServingSystem::kFasterTransformer, ServingSystem::kVllm}) {
      auto base = SimulateTextGen(s, trace, Llama7B(), cm);
      EXPECT_GT(punica.throughput_tok_s, base.throughput_tok_s * 1.5)
          << ToString(pop) << " vs " << base.system;
    }
  }
}

TEST(SystemsTest, VllmSlightlyBeatsPunicaOnIdentical) {
  // Fig. 11: backbone-only vLLM edges out Punica when there is one model,
  // because Punica still pays the LoRA addon.
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kIdentical, 100);
  auto vllm = SimulateTextGen(ServingSystem::kVllm, trace, Llama7B(), cm);
  auto punica = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(), cm);
  EXPECT_GT(vllm.throughput_tok_s, punica.throughput_tok_s);
  EXPECT_LT(vllm.throughput_tok_s, punica.throughput_tok_s * 1.4);
}

TEST(SystemsTest, PunicaThroughputStableAcrossDistributions) {
  // The headline property: Punica's throughput is nearly workload-agnostic.
  CostModel cm((A100Sxm80GB()));
  double lo = 1e18, hi = 0.0;
  for (auto pop : kAllPopularities) {
    auto trace = SmallTrace(pop, 80);
    auto r = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(), cm);
    lo = std::min(lo, r.throughput_tok_s);
    hi = std::max(hi, r.throughput_tok_s);
  }
  EXPECT_LT(hi / lo, 1.5);
}

TEST(SystemsTest, BaselinesCollapseOnDistinct) {
  // Distinct forces batch size 1 on every baseline.
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kDistinct, 40);
  for (auto s : {ServingSystem::kDeepSpeed, ServingSystem::kVllm}) {
    auto r = SimulateTextGen(s, trace, Llama7B(), cm);
    EXPECT_NEAR(r.mean_decode_batch, 1.0, 0.15) << r.system;
  }
  auto punica = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(), cm);
  EXPECT_GT(punica.mean_decode_batch, 5.0);
}

TEST(SystemsTest, UniformBaselineBatchesSmall) {
  // §7.2: "most batches for the baseline systems have extremely small batch
  // sizes (1–3)" under Uniform.
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kUniform, 200);
  auto ds = SimulateTextGen(ServingSystem::kDeepSpeed, trace, Llama7B(), cm);
  EXPECT_LT(ds.mean_decode_batch, 3.0);
  EXPECT_GE(ds.mean_decode_batch, 1.0);
}

TEST(SystemsTest, IdenticalBaselinesBatchFully) {
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kIdentical, 96);
  TextGenConfig cfg;
  auto ds = SimulateTextGen(ServingSystem::kDeepSpeed, trace, Llama7B(), cm,
                            cfg);
  EXPECT_GT(ds.mean_decode_batch, cfg.max_batch_size - 1);
}

TEST(SystemsTest, InseparableKvCacheWastesSlots) {
  // HF/DS/FT run padding rows once short requests finish (Fig. 6); the
  // continuous systems never do.
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kIdentical, 64);
  auto ds = SimulateTextGen(ServingSystem::kDeepSpeed, trace, Llama7B(), cm);
  EXPECT_GT(ds.wasted_decode_slots, 0);
  auto vllm = SimulateTextGen(ServingSystem::kVllm, trace, Llama7B(), cm);
  EXPECT_EQ(vllm.wasted_decode_slots, 0);
}

TEST(SystemsTest, HuggingFaceSlowestOnIdentical) {
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kIdentical, 64);
  auto hf = SimulateTextGen(ServingSystem::kHuggingFace, trace, Llama7B(),
                            cm);
  for (auto s : {ServingSystem::kDeepSpeed, ServingSystem::kVllm,
                 ServingSystem::kPunica}) {
    auto r = SimulateTextGen(s, trace, Llama7B(), cm);
    EXPECT_GT(r.throughput_tok_s, hf.throughput_tok_s) << r.system;
  }
}

TEST(SystemsTest, TensorParallel70BPreservesOrdering) {
  // Fig. 12 shape: Punica flat and high; vLLM collapses on multi-LoRA.
  CostModel cm((A100Sxm40GB()));
  TextGenConfig cfg;
  cfg.tp_degree = 8;
  auto trace = SmallTrace(Popularity::kSkewed, 60);
  auto punica = SimulateTextGen(ServingSystem::kPunica, trace, Llama70B(),
                                cm, cfg);
  auto vllm = SimulateTextGen(ServingSystem::kVllm, trace, Llama70B(), cm,
                              cfg);
  EXPECT_GT(punica.throughput_tok_s, vllm.throughput_tok_s * 3.0);
}

/// Long-prompt mix for the chunked-prefill experiments: heavy prompt tail
/// (median ≈ 500 tokens), modest outputs — the workload where an atomic
/// prefill stalls every in-flight decode stream.
std::vector<TraceRequest> LongPromptTrace(int n = 80) {
  TraceSpec spec;
  spec.num_requests = n;
  spec.popularity = Popularity::kUniform;
  spec.seed = 11;
  spec.lengths.prompt_mu = 6.2;
  spec.lengths.prompt_sigma = 0.7;
  spec.lengths.output_mu = 3.4;
  spec.lengths.output_sigma = 0.6;
  return GenerateClosedLoopTrace(spec);
}

TEST(SystemsTest, ChunkedPrefillPreservesTotalsAndCountsPartials) {
  CostModel cm((A100Sxm80GB()));
  auto trace = LongPromptTrace();
  TextGenConfig cfg;
  auto atomic = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(),
                                cm, cfg);
  cfg.max_step_tokens = 256;
  auto chunked = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(),
                                 cm, cfg);
  // Chunking moves step boundaries, never the work: same tokens out, same
  // prefill rows computed, strictly more invocations.
  EXPECT_EQ(chunked.tokens_generated, atomic.tokens_generated);
  EXPECT_EQ(chunked.prefill_tokens, atomic.prefill_tokens);
  EXPECT_GT(chunked.invocations, atomic.invocations);
}

TEST(SystemsTest, ChunkedPrefillImprovesInterTokenTailOnLongPrompts) {
  // The acceptance shape: under a long-prompt arrival mix, a step token
  // budget must cut the decode inter-token tail (p95 and worst stall)
  // without giving up aggregate throughput.
  CostModel cm((A100Sxm80GB()));
  auto trace = LongPromptTrace();
  TextGenConfig cfg;
  auto atomic = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(),
                                cm, cfg);
  // 1024 is the no-regression operating point for this model/overhead mix
  // (the bench sweeps the full tradeoff curve: smaller budgets keep buying
  // tail latency at a growing invocation-overhead cost).
  cfg.max_step_tokens = 1024;
  auto chunked = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(),
                                 cm, cfg);
  ASSERT_GT(atomic.p95_inter_token_s, 0.0);
  EXPECT_LT(chunked.p95_inter_token_s, atomic.p95_inter_token_s * 0.75);
  EXPECT_LT(chunked.max_inter_token_s, atomic.max_inter_token_s);
  // No aggregate regression: the same FLOPs land in only slightly more
  // invocations at this budget.
  EXPECT_GT(chunked.throughput_tok_s, atomic.throughput_tok_s * 0.995);
}

TEST(SystemsTest, OpenLoopArrivalsGateAdmission) {
  // Arrivals spaced far wider than a request's service time: the server
  // drains each request before the next exists, so TTFT must be flat
  // (≈ one prefill) instead of growing with queue position, and the
  // makespan must span the arrival schedule rather than compressing to
  // back-to-back service.
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kUniform, 10);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_time = 10.0 * static_cast<double>(i);
  }
  auto r = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(), cm);
  EXPECT_EQ(r.tokens_generated, TotalOutputTokens(trace));
  EXPECT_GE(r.makespan_s, trace.back().arrival_time);
  // Every request joins an empty working set the moment it arrives.
  EXPECT_LT(r.queue_wait_mean_s, 1e-9);
  ASSERT_GT(r.ttft_p50_s, 0.0);
  EXPECT_LT(r.ttft_p95_s, 1.0);
}

TEST(SystemsTest, ClosedLoopTtftMeasuresQueueDepth) {
  // All-at-t=0 traces keep their historical behaviour (this guards the
  // BENCH baselines): arrival gating is a no-op, and TTFT now reports the
  // FCFS queueing delay — p95 well above p50, queue wait positive for the
  // requests admitted after the first batch.
  CostModel cm((A100Sxm80GB()));
  auto trace = SmallTrace(Popularity::kUniform, 60);
  auto open = trace;
  for (auto& req : open) req.arrival_time = 0.0;  // already true; explicit
  auto r = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(), cm);
  auto r2 = SimulateTextGen(ServingSystem::kPunica, open, Llama7B(), cm);
  EXPECT_DOUBLE_EQ(r.makespan_s, r2.makespan_s);
  EXPECT_EQ(r.invocations, r2.invocations);
  EXPECT_GT(r.ttft_p95_s, r.ttft_p50_s);
  EXPECT_GT(r.queue_wait_mean_s, 0.0);
}

TEST(SystemsTest, OverloadedOpenLoopQueueGrowsWithRate) {
  // Offered load far past capacity behaves like the closed loop: later
  // requests wait, so mean queueing delay at 4× the saturation rate must
  // exceed the trickle case by orders of magnitude.
  CostModel cm((A100Sxm80GB()));
  auto slow = SmallTrace(Popularity::kUniform, 40);
  auto fast = slow;
  AssignPoissonArrivals(slow, /*rate=*/0.5, /*seed=*/5);
  AssignPoissonArrivals(fast, /*rate=*/200.0, /*seed=*/5);
  auto r_slow = SimulateTextGen(ServingSystem::kPunica, slow, Llama7B(), cm);
  auto r_fast = SimulateTextGen(ServingSystem::kPunica, fast, Llama7B(), cm);
  EXPECT_GT(r_fast.queue_wait_mean_s, r_slow.queue_wait_mean_s);
  EXPECT_GT(r_fast.ttft_p95_s, r_slow.ttft_p95_s);
  // Saturated server finishes sooner than the trickle (arrivals, not
  // capacity, bound the slow run's makespan).
  EXPECT_LT(r_fast.makespan_s, r_slow.makespan_s);
}

}  // namespace
}  // namespace punica
