#include "baselines/lora_ops.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpu/specs.h"
#include "util/rng.h"

namespace punica {
namespace {

struct Problem {
  std::vector<LoraAB> adapters;
  std::vector<const LoraAB*> ptrs;
  std::vector<std::int32_t> seg;
  std::vector<float> x;
  int h_in;
  int h_out;
  int rows() const { return seg.back(); }
};

Problem MakeProblem(std::span<const std::int32_t> seg_rows, int h_in,
                    int h_out, int rank, Pcg32& rng) {
  Problem p;
  p.h_in = h_in;
  p.h_out = h_out;
  p.seg.push_back(0);
  for (std::size_t i = 0; i < seg_rows.size(); ++i) {
    p.seg.push_back(p.seg.back() + seg_rows[i]);
    p.adapters.push_back(
        LoraAB::Random(h_in, h_out, rank, 1000 + i * 13));
  }
  for (const auto& a : p.adapters) p.ptrs.push_back(&a);
  p.x = RandomGaussianVector(
      static_cast<std::size_t>(p.rows()) * static_cast<std::size_t>(h_in),
      1.0f, rng);
  return p;
}

// All three operator implementations must agree — the paper's Fig. 8
// compares their latency on *identical semantics*.
class LoraOpEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LoraOpEquivalence, LoopAndGatherBmmMatchSgmv) {
  auto [segments, rows_per_seg, rank] = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(segments * 100 + rows_per_seg * 10 +
                                       rank));
  std::vector<std::int32_t> seg_rows(static_cast<std::size_t>(segments),
                                     rows_per_seg);
  const int h = 64;
  Problem p = MakeProblem(seg_rows, h, h, rank, rng);

  std::vector<float> y_sgmv(static_cast<std::size_t>(p.rows()) * h, 0.0f);
  std::vector<float> ws(static_cast<std::size_t>(p.rows()) *
                        static_cast<std::size_t>(rank));
  BatchedLoraAddon(y_sgmv, p.x, p.ptrs, p.seg, h, h, ws);

  std::vector<float> y_loop(y_sgmv.size(), 0.0f);
  LoopLoraApply(y_loop, p.x, p.ptrs, p.seg, h, h);

  std::vector<float> y_gbmm(y_sgmv.size(), 0.0f);
  GatherBmmLoraApply(y_gbmm, p.x, p.ptrs, p.seg, h, h);

  for (std::size_t i = 0; i < y_sgmv.size(); ++i) {
    ASSERT_NEAR(y_loop[i], y_sgmv[i], 5e-3f) << "loop vs sgmv at " << i;
    ASSERT_NEAR(y_gbmm[i], y_sgmv[i], 5e-3f) << "gbmm vs sgmv at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LoraOpEquivalence,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(4, 16)));

TEST(GatherBmmTest, StatsMatchPaperFormulas) {
  Pcg32 rng(9);
  std::vector<std::int32_t> seg_rows = {2, 3};
  const int h = 32, rank = 8;
  Problem p = MakeProblem(seg_rows, h, h, rank, rng);
  std::vector<float> y(static_cast<std::size_t>(p.rows()) * h, 0.0f);
  GatherBmmStats stats;
  GatherBmmLoraApply(y, p.x, p.ptrs, p.seg, h, h, &stats);
  double per_model = (h * rank + rank * h) * 2.0;
  EXPECT_DOUBLE_EQ(stats.gather_read_bytes, 2 * per_model);
  EXPECT_DOUBLE_EQ(stats.gather_write_bytes, 5 * per_model);
  EXPECT_DOUBLE_EQ(stats.bmm_weight_read_bytes, 5 * per_model);
}

TEST(GatherBmmTest, NullSegmentsSkipped) {
  Pcg32 rng(10);
  std::vector<std::int32_t> seg = {0, 2, 4};
  LoraAB ad = LoraAB::Random(16, 16, 4, 1);
  std::vector<const LoraAB*> ptrs = {&ad, nullptr};
  auto x = RandomGaussianVector(4 * 16, 1.0f, rng);
  std::vector<float> y(4 * 16, 0.5f);
  GatherBmmLoraApply(y, x, ptrs, seg, 16, 16);
  for (std::size_t i = 2 * 16; i < 4 * 16; ++i) {
    EXPECT_EQ(y[i], 0.5f);  // backbone rows untouched
  }
}

// --- Latency model shape checks (Fig. 8's orderings) ---

TEST(LoraOpLatencyTest, DistinctOrderingLoopWorstSgmvBest) {
  CostModel cm((A100Sxm80GB()));
  std::vector<std::int32_t> distinct(64, 1);
  double loop = LoopLoraLatency(cm, distinct, 4096, 4096, 16);
  double gbmm = GatherBmmLoraLatency(cm, distinct, 4096, 4096, 16);
  double sgmv = cm.SgmvPairLatency(distinct, 4096, 4096, 16);
  EXPECT_GT(loop, gbmm);
  EXPECT_GT(gbmm, sgmv);
  // Loop pays 64 kernel-pair overheads: ~2 ms.
  EXPECT_GT(loop, 1e-3);
}

TEST(LoraOpLatencyTest, IdenticalCaseConverges) {
  // With one LoRA model all implementations are BMM-like; Loop ≈ SGMV.
  CostModel cm((A100Sxm80GB()));
  std::vector<std::int32_t> identical = {64};
  double loop = LoopLoraLatency(cm, identical, 4096, 4096, 16);
  double sgmv = cm.SgmvPairLatency(identical, 4096, 4096, 16);
  EXPECT_NEAR(loop, sgmv, sgmv * 0.05);
}

TEST(LoraOpLatencyTest, GatherBmmScalesWithBatchNotModels) {
  // Gather-BMM's IO ∝ s_n (stacked copies), so Identical at bs 64 is nearly
  // as expensive as Distinct at bs 64 — unlike SGMV.
  CostModel cm((A100Sxm80GB()));
  std::vector<std::int32_t> distinct(64, 1);
  std::vector<std::int32_t> identical = {64};
  double g_d = GatherBmmLoraLatency(cm, distinct, 4096, 4096, 16);
  double g_i = GatherBmmLoraLatency(cm, identical, 4096, 4096, 16);
  EXPECT_LT(g_i, g_d);
  EXPECT_GT(g_i, g_d * 0.5);  // still pays the per-row stacking
  double s_d = cm.SgmvPairLatency(distinct, 4096, 4096, 16);
  double s_i = cm.SgmvPairLatency(identical, 4096, 4096, 16);
  EXPECT_LT(s_i / s_d, g_i / g_d);  // SGMV benefits more from sharing
}

TEST(LoraOpLatencyTest, BmmLatencyIndependentOfSegmentLayout) {
  // Fig. 8 note: "BMM is data-independent, its latency is consistent across
  // four workloads" — it depends only on s_n.
  CostModel cm((A100Sxm80GB()));
  std::vector<std::int32_t> distinct(64, 1);
  std::vector<std::int32_t> identical = {64};
  EXPECT_DOUBLE_EQ(BmmOnlyLatency(cm, distinct, 4096, 4096, 16),
                   BmmOnlyLatency(cm, identical, 4096, 4096, 16));
}

TEST(LoraOpLatencyTest, EmptyIsFree) {
  CostModel cm((A100Sxm80GB()));
  std::vector<std::int32_t> none;
  EXPECT_EQ(LoopLoraLatency(cm, none, 4096, 4096, 16), 0.0);
  EXPECT_EQ(GatherOnlyLatency(cm, none, 4096, 4096, 16), 0.0);
  EXPECT_EQ(BmmOnlyLatency(cm, none, 4096, 4096, 16), 0.0);
}

}  // namespace
}  // namespace punica
