#include "gpu/costmodel.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpu/specs.h"
#include "model/config.h"

namespace punica {
namespace {

CostModel Cm() { return CostModel(A100Sxm80GB()); }

std::vector<std::int32_t> DistinctSegs(int n) {
  return std::vector<std::int32_t>(static_cast<std::size_t>(n), 1);
}

TEST(SpecsTest, A100Numbers) {
  GpuSpec g = A100Sxm80GB();
  EXPECT_DOUBLE_EQ(g.fp16_flops, 312e12);
  EXPECT_DOUBLE_EQ(g.hbm_bytes_per_s, 1.935e12);
  EXPECT_EQ(g.memory_bytes, 80LL * 1000 * 1000 * 1000);
}

TEST(CostModelTest, SgmvKernelMonotoneInBatch) {
  CostModel cm = Cm();
  double prev = 0.0;
  for (int n : {1, 4, 16, 64}) {
    auto segs = DistinctSegs(n);
    double t = cm.SgmvKernelTime(segs, 4096, 16);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CostModelTest, IdenticalCheaperThanDistinct) {
  CostModel cm = Cm();
  std::vector<std::int32_t> identical = {64};
  auto distinct = DistinctSegs(64);
  EXPECT_LT(cm.SgmvKernelTime(identical, 4096, 16),
            cm.SgmvKernelTime(distinct, 4096, 16));
  EXPECT_LT(cm.SgmvPairLatency(identical, 4096, 4096, 16),
            cm.SgmvPairLatency(distinct, 4096, 4096, 16));
}

TEST(CostModelTest, ExpandStreamsFasterThanShrink) {
  // Shrink (thin output rows) coalesces poorly; expand (wide rows) streams
  // near full bandwidth — the asymmetry behind the Fig. 9 rank slopes.
  CostModel cm = Cm();
  auto segs = DistinctSegs(64);
  double shrink = cm.SgmvKernelTime(segs, 4096, 16);
  double expand = cm.SgmvKernelTime(segs, 16, 4096);
  EXPECT_GT(shrink, expand);
}

TEST(CostModelTest, EmptyShapesCostNothing) {
  CostModel cm = Cm();
  std::vector<std::int32_t> none;
  EXPECT_EQ(cm.SgmvKernelTime(none, 4096, 16), 0.0);
  StepShape empty;
  EXPECT_EQ(cm.StepLatency(Llama7B(), empty), 0.0);
  std::vector<std::int64_t> no_kv;
  EXPECT_EQ(cm.AttentionDecodeLatency(Llama7B(), no_kv, 1), 0.0);
}

TEST(CostModelTest, DecodeStepGrowsSublinearlyWithBatch) {
  // The Fig. 1 batching effect: decode bs 1 → 32 must grow far less than
  // 32×, because weight streaming dominates.
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  double t1 = cm.DecodeStepLatency(c, 1, 128);
  double t32 = cm.DecodeStepLatency(c, 32, 128);
  EXPECT_LT(t32, t1 * 2.0);
  EXPECT_GT(t32, t1);
}

TEST(CostModelTest, PrefillRoughlyProportionalToBatch) {
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  double t1 = cm.PrefillStepLatency(c, 1, 1024);
  double t8 = cm.PrefillStepLatency(c, 8, 1024);
  EXPECT_GT(t8, t1 * 4.0);
  EXPECT_LT(t8, t1 * 9.0);
}

TEST(CostModelTest, DecodeGrowsWithSequenceLength) {
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  EXPECT_LT(cm.DecodeStepLatency(c, 32, 128),
            cm.DecodeStepLatency(c, 32, 2048));
}

TEST(CostModelTest, BiggerModelSlower) {
  CostModel cm = Cm();
  EXPECT_LT(cm.DecodeStepLatency(Llama7B(), 16, 512),
            cm.DecodeStepLatency(Llama13B(), 16, 512));
}

TEST(CostModelTest, TensorParallelismSpeedsUpBigModel) {
  CostModel cm = Cm();
  LlamaConfig c = Llama70B();
  double tp1 = cm.DecodeStepLatency(c, 32, 512, 1);
  double tp8 = cm.DecodeStepLatency(c, 32, 512, 8);
  EXPECT_LT(tp8, tp1);
  EXPECT_GT(tp8, tp1 / 8.0);  // allreduce + overheads prevent ideal scaling
}

TEST(CostModelTest, LayerLatencyWorkloadAgnostic) {
  // Fig. 10's observation: the LoRA addon is small next to the backbone, so
  // layer latency is nearly the same across popularity distributions.
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  StepShape distinct;
  distinct.decode_kv_lens.assign(32, 512);
  distinct.lora_segment_rows = DistinctSegs(32);
  StepShape identical = distinct;
  identical.lora_segment_rows = {32};
  double td = cm.LayerLatency(c, distinct);
  double ti = cm.LayerLatency(c, identical);
  EXPECT_LT(td / ti, 1.45);
  EXPECT_GE(td, ti);
}

TEST(CostModelTest, LoraLoadIsMilliseconds) {
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  double per_layer = cm.LoraLoadLayerLatency(c, 16);
  double per_model = cm.LoraLoadModelLatency(c, 16);
  // §5.2: ~50 µs/layer, ~2 ms/model (we land within small factors; see
  // EXPERIMENTS.md).
  EXPECT_GT(per_layer, 20e-6);
  EXPECT_LT(per_layer, 300e-6);
  EXPECT_GT(per_model, 1e-3);
  EXPECT_LT(per_model, 8e-3);
  EXPECT_LT(per_model, c.num_layers * per_layer);
}

TEST(CostModelTest, KvCapacityPositiveAndOrdered) {
  CostModel cm = Cm();
  std::int64_t cap7 = cm.KvCacheCapacityTokens(Llama7B());
  std::int64_t cap13 = cm.KvCacheCapacityTokens(Llama13B());
  EXPECT_GT(cap7, 0);
  EXPECT_GT(cap7, cap13);  // smaller model leaves more KvCache room
  // 7B on 80 GB: weights 13.5 GB, ~0.5 MB/token ⇒ order 100k tokens.
  EXPECT_GT(cap7, 60000);
  EXPECT_LT(cap7, 300000);
}

TEST(CostModelTest, QuantizedWeightsFreeKvCapacity) {
  // Capacity accounting is weight-bytes-aware: q4 weights occupy ~4× less
  // HBM than f16, so the same card holds strictly more KvCache tokens.
  CostModel cm = Cm();
  LlamaConfig f16c = Llama7B();
  LlamaConfig q8c = Llama7B();
  q8c.weight_dtype = WeightDtype::kQ8_0;
  LlamaConfig q4c = Llama7B();
  q4c.weight_dtype = WeightDtype::kQ4_0;
  std::int64_t cap_f16 = cm.KvCacheCapacityTokens(f16c);
  std::int64_t cap_q8 = cm.KvCacheCapacityTokens(q8c);
  std::int64_t cap_q4 = cm.KvCacheCapacityTokens(q4c);
  EXPECT_GT(cap_q8, cap_f16);
  EXPECT_GT(cap_q4, cap_q8);
  // 70B f16 (~140 GB) cannot fit one 80 GB card; q4 (~39 GB) can.
  LlamaConfig big_q4 = Llama70B();
  big_q4.weight_dtype = WeightDtype::kQ4_0;
  EXPECT_EQ(cm.KvCacheCapacityTokens(Llama70B(), 1), 0);
  EXPECT_GT(cm.KvCacheCapacityTokens(big_q4, 1), 0);
}

TEST(CostModelTest, Kv70BNeedsTensorParallelism) {
  CostModel cm(A100Sxm40GB());
  EXPECT_EQ(cm.KvCacheCapacityTokens(Llama70B(), 1), 0);  // does not fit
  EXPECT_GT(cm.KvCacheCapacityTokens(Llama70B(), 8), 0);
}

TEST(SpecsTest, A100SmCount) {
  EXPECT_EQ(A100Sxm80GB().sm_count, 108);
  EXPECT_EQ(A100Sxm40GB().sm_count, 108);  // same GA100 die
}

TEST(CostModelTest, SerialKvDecodePaysOccupancyPenaltyAtSmallBatch) {
  // One CTA per (sequence, kv_head): a single 7B sequence fills 32 of 108
  // SMs, so the serial kernel's latency scales by the idle fraction. The
  // default (split-KV) model is the plain roofline and must be cheaper.
  CostModel split = Cm();
  CostModel serial = Cm();
  serial.mutable_params().attn_split_kv = false;
  LlamaConfig c = Llama7B();  // 32 kv heads
  std::vector<std::int64_t> one_seq = {8192};
  double t_split = split.AttentionDecodeLatency(c, one_seq, 1);
  double t_serial = serial.AttentionDecodeLatency(c, one_seq, 1);
  EXPECT_GT(t_serial, t_split);
  // fraction = 32/108; only the memory term scales, so the ratio of the
  // memory portions is exactly 108/32.
  double overhead = split.params().attn_kernel_overhead_s;
  EXPECT_NEAR((t_serial - overhead) / (t_split - overhead), 108.0 / 32.0,
              1e-9);
}

TEST(CostModelTest, SerialKvPenaltyVanishesWhenCtasSaturate) {
  // 4 sequences × 32 kv heads = 128 CTAs ≥ 108 SMs: both kernels hit the
  // roofline and the models agree exactly.
  CostModel split = Cm();
  CostModel serial = Cm();
  serial.mutable_params().attn_split_kv = false;
  LlamaConfig c = Llama7B();
  std::vector<std::int64_t> batch(4, 4096);
  EXPECT_DOUBLE_EQ(serial.AttentionDecodeLatency(c, batch, 1),
                   split.AttentionDecodeLatency(c, batch, 1));
}

TEST(CostModelTest, SerialKvPenaltyWorsensUnderTensorParallelism) {
  // TP shards kv heads across ranks, shrinking per-rank CTA counts — the
  // serial kernel's occupancy gap widens with tp while the split-KV model
  // keeps scaling. Ratio serial/split must grow monotonically in tp.
  CostModel split = Cm();
  CostModel serial = Cm();
  serial.mutable_params().attn_split_kv = false;
  LlamaConfig c = Llama70B();  // 8 kv heads (GQA)
  std::vector<std::int64_t> one_seq = {8192};
  double prev_ratio = 0.0;
  for (int tp : {1, 2, 4, 8}) {
    double ratio = serial.AttentionDecodeLatency(c, one_seq, tp) /
                   split.AttentionDecodeLatency(c, one_seq, tp);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

TEST(CostModelTest, StepShapeHelpers) {
  StepShape s;
  s.prefill_chunks = {100, 50};
  s.prefill_kv_lens = {100, 50};
  s.decode_kv_lens = {10, 20, 30};
  EXPECT_EQ(s.total_tokens(), 153);
  EXPECT_EQ(s.batch_size(), 5);
}

}  // namespace
}  // namespace punica
