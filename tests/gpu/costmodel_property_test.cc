// Property sweeps over the cost model: orderings that must hold at *every*
// point of the (batch × sequence-length × model × tp) grid, not just the
// calibration anchors. These protect the figure-generating benches against
// recalibration regressions.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "model/config.h"

namespace punica {
namespace {

using GridParam = std::tuple<int, int>;  // (batch, kv_len)

class DecodeGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  CostModel cm_{A100Sxm80GB()};
};

TEST_P(DecodeGrid, MonotoneInBatch) {
  auto [batch, len] = GetParam();
  LlamaConfig c = Llama7B();
  double t = cm_.DecodeStepLatency(c, batch, len);
  double t_next = cm_.DecodeStepLatency(c, batch + 1, len);
  EXPECT_GE(t_next, t);
  // And always sublinear: doubling the batch never doubles decode latency.
  double t_double = cm_.DecodeStepLatency(c, batch * 2, len);
  EXPECT_LT(t_double, t * 2.0);
}

TEST_P(DecodeGrid, MonotoneInSequenceLength) {
  auto [batch, len] = GetParam();
  LlamaConfig c = Llama7B();
  EXPECT_LE(cm_.DecodeStepLatency(c, batch, len),
            cm_.DecodeStepLatency(c, batch, len * 2));
}

TEST_P(DecodeGrid, BiggerModelNeverFaster) {
  auto [batch, len] = GetParam();
  EXPECT_LE(cm_.DecodeStepLatency(Llama7B(), batch, len),
            cm_.DecodeStepLatency(Llama13B(), batch, len));
  EXPECT_LE(cm_.DecodeStepLatency(Llama13B(), batch, len),
            cm_.DecodeStepLatency(Llama70B(), batch, len));
}

TEST_P(DecodeGrid, PerTokenCostImprovesWithBatch) {
  // The whole point of batching: amortised per-token latency falls.
  auto [batch, len] = GetParam();
  LlamaConfig c = Llama7B();
  double per_token = cm_.DecodeStepLatency(c, batch, len) / batch;
  double per_token_2x = cm_.DecodeStepLatency(c, batch * 2, len) / (batch * 2);
  EXPECT_LT(per_token_2x, per_token);
}

TEST_P(DecodeGrid, LoraAddonIsBoundedOverhead) {
  // Punica's "+2 ms per token" claim: the LoRA addon adds a bounded, small
  // fraction on top of the backbone step at every grid point.
  auto [batch, len] = GetParam();
  LlamaConfig c = Llama7B();
  StepShape backbone;
  backbone.decode_kv_lens.assign(static_cast<std::size_t>(batch), len);
  StepShape with_lora = backbone;
  with_lora.lora_segment_rows.assign(static_cast<std::size_t>(batch), 1);
  double t_backbone = cm_.StepLatency(c, backbone);
  double t_lora = cm_.StepLatency(c, with_lora);
  EXPECT_GT(t_lora, t_backbone);
  EXPECT_LT(t_lora - t_backbone, 10e-3);  // ≲ a few ms even fully Distinct
  EXPECT_LT(t_lora / t_backbone, 1.75);
}

INSTANTIATE_TEST_SUITE_P(Grid, DecodeGrid,
                         ::testing::Combine(::testing::Values(1, 4, 16, 32),
                                            ::testing::Values(64, 512,
                                                              2048)));

class TpGrid : public ::testing::TestWithParam<int> {
 protected:
  CostModel cm_{A100Sxm40GB()};
};

TEST_P(TpGrid, MoreShardsNeverSlower) {
  int tp = GetParam();
  LlamaConfig c = Llama70B();
  double t = cm_.DecodeStepLatency(c, 32, 512, tp);
  double t2 = cm_.DecodeStepLatency(c, 32, 512, tp * 2);
  EXPECT_LT(t2, t);
  // Sub-ideal scaling: communication overheads keep speedup below 2×.
  EXPECT_GT(t2, t / 2.0);
}

TEST_P(TpGrid, LoraCostShrinksWithShards) {
  int tp = GetParam();
  LlamaConfig c = Llama70B();
  std::vector<std::int32_t> distinct(32, 1);
  EXPECT_GT(cm_.LoraLayerAddonLatency(c, distinct, 16, tp),
            cm_.LoraLayerAddonLatency(c, distinct, 16, tp * 2));
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpGrid, ::testing::Values(1, 2, 4));

class SegmentShapeGrid : public ::testing::TestWithParam<int> {
 protected:
  CostModel cm_{A100Sxm80GB()};
};

TEST_P(SegmentShapeGrid, FewerSegmentsSameRowsNeverSlower) {
  // Merging segments (more weight sharing) can only help SGMV.
  int batch = GetParam();
  for (int segs = 1; segs * 2 <= batch; segs *= 2) {
    std::vector<std::int32_t> coarse(static_cast<std::size_t>(segs),
                                     batch / segs);
    std::vector<std::int32_t> fine(static_cast<std::size_t>(segs * 2),
                                   batch / (segs * 2));
    EXPECT_LE(cm_.SgmvPairLatency(coarse, 4096, 4096, 16),
              cm_.SgmvPairLatency(fine, 4096, 4096, 16) + 1e-12)
        << "batch " << batch << " segs " << segs;
  }
}

TEST_P(SegmentShapeGrid, RankMonotone) {
  int batch = GetParam();
  std::vector<std::int32_t> distinct(static_cast<std::size_t>(batch), 1);
  double prev = 0.0;
  for (int rank : {8, 16, 32, 64}) {
    double t = cm_.SgmvPairLatency(distinct, 4096, 4096, rank);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, SegmentShapeGrid,
                         ::testing::Values(4, 8, 16, 32, 64));

// --- Shared-prefix prefill (the prefix-hit term) ---

class PrefixHitGrid : public ::testing::TestWithParam<int> {
 protected:
  CostModel cm_{A100Sxm80GB()};
};

TEST_P(PrefixHitGrid, SuffixPrefillCheaperThanColdNeverFree) {
  // A chunk that is the suffix of a longer cached span must cost less than
  // prefilling the whole span cold, but more than a cold prefill of just
  // the chunk (it attends over the full cached kv).
  int kv = GetParam();
  LlamaConfig c = Llama7B();
  std::vector<std::int32_t> chunk = {kv / 2};
  std::vector<std::int64_t> full_kv = {kv};
  std::vector<std::int64_t> chunk_kv = {kv / 2};
  std::vector<std::int32_t> full_chunk = {kv};
  double hit = cm_.AttentionPrefillLatency(c, chunk, full_kv, 1);
  double cold_full = cm_.AttentionPrefillLatency(c, full_chunk, full_kv, 1);
  double cold_half = cm_.AttentionPrefillLatency(c, chunk, chunk_kv, 1);
  // At short kv the kernel is KV-read-bound and both stream the same full
  // span — hence ≤, with strict savings once compute matters (kv ≥ 512).
  EXPECT_LE(hit, cold_full);
  if (kv >= 512) EXPECT_LT(hit, cold_full);
  EXPECT_GE(hit, cold_half);
}

TEST_P(PrefixHitGrid, HitShavesWholeStepLatency) {
  // Through StepLatency: the same request with a cached prefix is cheaper.
  int kv = GetParam();
  LlamaConfig c = Llama7B();
  StepShape cold;
  cold.prefill_chunks = {static_cast<std::int32_t>(kv)};
  cold.prefill_kv_lens = {kv};
  StepShape hit = cold;
  hit.prefill_chunks = {static_cast<std::int32_t>(kv / 4)};
  EXPECT_LT(cm_.StepLatency(c, hit), cm_.StepLatency(c, cold));
}

INSTANTIATE_TEST_SUITE_P(KvLens, PrefixHitGrid,
                         ::testing::Values(128, 512, 2048));

}  // namespace
}  // namespace punica
