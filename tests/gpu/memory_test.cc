#include "gpu/memory.h"

#include <gtest/gtest.h>

#include "gpu/costmodel.h"
#include "gpu/specs.h"

namespace punica {
namespace {

MemoryPlanRequest Req7B() {
  return {.gpu = A100Sxm80GB(), .model = Llama7B()};
}

TEST(MemoryPlanTest, SevenBFitsOn80GB) {
  MemoryPlan plan = PlanMemory(Req7B());
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  // Weights ≈ 13.5 GB; KvCache gets the large remaining fraction (paper §3).
  EXPECT_NEAR(static_cast<double>(plan.weight_bytes), 13.5e9, 1.5e9);
  EXPECT_GT(plan.kv_budget_bytes, plan.total_bytes / 2);
  // ~0.5 MB/token for 7B ⇒ order 100k tokens.
  EXPECT_GT(plan.kv_capacity_tokens, 60000);
  EXPECT_LT(plan.kv_capacity_tokens, 300000);
  EXPECT_EQ(plan.kv_capacity_pages,
            static_cast<std::int32_t>(plan.kv_capacity_tokens / 16));
}

TEST(MemoryPlanTest, SeventyBNeedsTensorParallelism) {
  MemoryPlanRequest req{.gpu = A100Sxm40GB(), .model = Llama70B()};
  MemoryPlan tp1 = PlanMemory(req);
  EXPECT_FALSE(tp1.feasible);
  EXPECT_NE(tp1.infeasible_reason.find("tp"), std::string::npos);

  req.tp_degree = 8;
  MemoryPlan tp8 = PlanMemory(req);
  ASSERT_TRUE(tp8.feasible) << tp8.infeasible_reason;
  EXPECT_GT(tp8.kv_capacity_tokens, 0);
}

TEST(MemoryPlanTest, LoraSlabScalesWithSlotsAndRank) {
  MemoryPlanRequest req = Req7B();
  req.lora_slots = 10;
  MemoryPlan small = PlanMemory(req);
  req.lora_slots = 100;
  MemoryPlan big = PlanMemory(req);
  EXPECT_EQ(big.lora_slab_bytes, small.lora_slab_bytes * 10);
  EXPECT_LT(big.kv_capacity_tokens, small.kv_capacity_tokens);

  req.lora_rank = 64;
  MemoryPlan high_rank = PlanMemory(req);
  EXPECT_GT(high_rank.adapter_bytes, big.adapter_bytes);
}

TEST(MemoryPlanTest, AdapterIsAboutOnePercentOfBackbone) {
  // Paper §2.2/§5.2: each LoRA model adds ~0.1–1% of the model weight.
  MemoryPlan plan = PlanMemory(Req7B());
  double ratio = static_cast<double>(plan.adapter_bytes) /
                 static_cast<double>(plan.weight_bytes);
  EXPECT_GT(ratio, 0.001);
  EXPECT_LT(ratio, 0.012);
}

TEST(MemoryPlanTest, MaxConcurrentSequences) {
  MemoryPlan plan = PlanMemory(Req7B());
  std::int64_t at_512 = plan.MaxConcurrentSequences(512);
  std::int64_t at_2048 = plan.MaxConcurrentSequences(2048);
  EXPECT_EQ(at_512, plan.kv_capacity_tokens / 512);
  EXPECT_GT(at_512, at_2048);
  // Plenty of room for the paper's max batch of 32 even at full context.
  EXPECT_GT(at_2048, 32);
}

TEST(MemoryPlanTest, MatchesCostModelCapacityApproximately) {
  // The runner-facing CostModel::KvCacheCapacityTokens and the planner must
  // agree to within the planner's extra reserves.
  CostModel cm((A100Sxm80GB()));
  MemoryPlanRequest req = Req7B();
  req.lora_slots = 0;
  req.activation_reserve_bytes = 2LL * 1024 * 1024 * 1024;
  MemoryPlan plan = PlanMemory(req);
  std::int64_t cm_tokens = cm.KvCacheCapacityTokens(Llama7B());
  EXPECT_NEAR(static_cast<double>(plan.kv_capacity_tokens),
              static_cast<double>(cm_tokens),
              static_cast<double>(cm_tokens) * 0.05);
}

TEST(MemoryPlanTest, DescribeMentionsEveryComponent) {
  MemoryPlanRequest req = Req7B();
  MemoryPlan plan = PlanMemory(req);
  std::string desc = DescribePlan(req, plan);
  EXPECT_NE(desc.find("backbone weights"), std::string::npos);
  EXPECT_NE(desc.find("LoRA slab"), std::string::npos);
  EXPECT_NE(desc.find("KvCache capacity"), std::string::npos);
}

TEST(MemoryPlanTest, InfeasibleWhenLoraSlabEatsEverything) {
  MemoryPlanRequest req = Req7B();
  req.lora_slots = 100000;
  MemoryPlan plan = PlanMemory(req);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("KvCache"), std::string::npos);
}

TEST(LayerwiseLoadTest, OverlapHidesCopiesBehindCompute) {
  CostModel cm((A100Sxm80GB()));
  LlamaConfig c = Llama7B();
  double per_layer_copy = cm.LoraLoadLayerLatency(c, 16);
  // Compute slower than copy: everything but the first copy hides.
  double stall_fast = cm.LoraLoadLayerwiseStall(c, 16, per_layer_copy * 2);
  EXPECT_DOUBLE_EQ(stall_fast, per_layer_copy);
  // Compute faster than copy: deficit accumulates per layer.
  double stall_slow = cm.LoraLoadLayerwiseStall(c, 16, per_layer_copy / 2);
  EXPECT_GT(stall_slow, per_layer_copy * c.num_layers * 0.4);
  // Either way, layerwise overlap beats a blocking whole-model load.
  EXPECT_LT(stall_fast, cm.LoraLoadModelLatency(c, 16));
}

}  // namespace
}  // namespace punica
