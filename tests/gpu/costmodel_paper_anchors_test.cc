// Calibration anchors: the cost model must land near the latency numbers the
// paper reports in its text (§5.2, §7.1, Fig. 1). These are deliberately
// loose (factor-scale) bounds — the goal is reproducing the *shape* of every
// figure, and these anchors pin the shapes to the right magnitudes.
#include <gtest/gtest.h>

#include <vector>

#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "model/config.h"

namespace punica {
namespace {

CostModel Cm() { return CostModel(A100Sxm80GB()); }

std::vector<std::int32_t> DistinctSegs(int n) {
  return std::vector<std::int32_t>(static_cast<std::size_t>(n), 1);
}

TEST(PaperAnchors, SgmvPairBatchOne) {
  // Fig. 8/9: a batch-1 LoRA operator (two SGMV launches) takes ~37–42 µs.
  CostModel cm = Cm();
  std::vector<std::int32_t> one = {1};
  double t = cm.SgmvPairLatency(one, 4096, 4096, 16);
  EXPECT_GT(t, 25e-6);
  EXPECT_LT(t, 55e-6);
}

TEST(PaperAnchors, SgmvPairDistinct64) {
  // Fig. 9 (r=16): Distinct at batch 64 ≈ 75 µs (Fig. 8 shows ≈ 116 µs).
  CostModel cm = Cm();
  auto segs = DistinctSegs(64);
  double t = cm.SgmvPairLatency(segs, 4096, 4096, 16);
  EXPECT_GT(t, 55e-6);
  EXPECT_LT(t, 130e-6);
}

TEST(PaperAnchors, SgmvPairSharedWorkloadsFlat) {
  // §7.1: Uniform/Skewed stay ≈ 37–46 µs; Identical ≈ 37–40 µs at batch 64.
  CostModel cm = Cm();
  std::vector<std::int32_t> uniform(8, 8);  // √64 models, 8 rows each
  std::vector<std::int32_t> identical = {64};
  double tu = cm.SgmvPairLatency(uniform, 4096, 4096, 16);
  double ti = cm.SgmvPairLatency(identical, 4096, 4096, 16);
  EXPECT_LT(tu, 60e-6);
  EXPECT_LT(ti, 50e-6);
  EXPECT_LE(ti, tu);
}

TEST(PaperAnchors, RankSweepDistinct64) {
  // Fig. 9: Distinct bs=64 at ranks 8/16/32/64 ≈ 72/75/89/118 µs —
  // monotone, with far-less-than-proportional growth in rank.
  CostModel cm = Cm();
  auto segs = DistinctSegs(64);
  double t8 = cm.SgmvPairLatency(segs, 4096, 4096, 8);
  double t16 = cm.SgmvPairLatency(segs, 4096, 4096, 16);
  double t32 = cm.SgmvPairLatency(segs, 4096, 4096, 32);
  double t64 = cm.SgmvPairLatency(segs, 4096, 4096, 64);
  EXPECT_LT(t8, t16);
  EXPECT_LT(t16, t32);
  EXPECT_LT(t32, t64);
  EXPECT_LT(t64, t8 * 4.0);  // 8× rank growth ⇒ ≪ 8× latency growth
  EXPECT_GT(t8, 45e-6);
  EXPECT_LT(t64, 250e-6);
}

TEST(PaperAnchors, DecodeStepLatency7B) {
  // Fig. 1 decode panel: bs=1 ≈ 11 ms (short) / 17 ms (len 2048);
  // bs=32 ≈ 13 ms (short) / 34 ms (len 2048). Backbone-only shapes.
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  double short1 = cm.DecodeStepLatency(c, 1, 128);
  double long1 = cm.DecodeStepLatency(c, 1, 2048);
  double short32 = cm.DecodeStepLatency(c, 32, 128);
  double long32 = cm.DecodeStepLatency(c, 32, 2048);
  EXPECT_GT(short1, 6e-3);
  EXPECT_LT(short1, 16e-3);
  EXPECT_GT(long32, 22e-3);
  EXPECT_LT(long32, 45e-3);
  EXPECT_LT(short32 / short1, 1.6);  // strong batching effect, short seqs
  EXPECT_GT(long32 / long1, 1.5);   // weaker effect for long seqs
  EXPECT_LT(long32 / long1, 3.5);
}

TEST(PaperAnchors, PrefillStepLatency7B) {
  // Fig. 1 prefill panel: bs=32 · len=2048 lands in whole seconds (~6 s);
  // prefill is compute-bound and ∝ batch size.
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  double t = cm.PrefillStepLatency(c, 32, 2048);
  EXPECT_GT(t, 3.0);
  EXPECT_LT(t, 9.0);
  double t1 = cm.PrefillStepLatency(c, 1, 2048);
  EXPECT_GT(t1, 0.08);
  EXPECT_LT(t1, 0.5);
}

TEST(PaperAnchors, LoraLoadOverPcie) {
  // §5.2: loading a LoRA layer ≈ 50 µs, a whole model ≈ 2 ms on PCIe Gen4
  // ×16. Our adapter counts 7 projections (the paper's estimate is looser);
  // accept 1–3× of the quoted numbers.
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  EXPECT_NEAR(cm.LoraLoadModelLatency(c, 16), 2e-3, 2.5e-3);
  EXPECT_NEAR(cm.LoraLoadLayerLatency(c, 16), 50e-6, 120e-6);
}

TEST(PaperAnchors, DecodeStepAround30ms) {
  // §5.2: "each decode step takes around 30ms" — a busy batch with long
  // sequences.
  CostModel cm = Cm();
  LlamaConfig c = Llama7B();
  StepShape shape;
  shape.decode_kv_lens.assign(32, 1600);
  shape.lora_segment_rows.assign(8, 4);
  double t = cm.StepLatency(c, shape);
  EXPECT_GT(t, 18e-3);
  EXPECT_LT(t, 45e-3);
}

}  // namespace
}  // namespace punica
