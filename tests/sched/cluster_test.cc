#include "sched/cluster.h"

#include <gtest/gtest.h>

#include "gpu/specs.h"
#include "sim/arrivals.h"
#include "workload/trace.h"

namespace punica {
namespace {

ClusterConfig SmallCluster(int gpus) {
  ClusterConfig cfg;
  cfg.num_gpus = gpus;
  cfg.model = Llama7B();
  cfg.runner.max_batch_size = 8;
  cfg.runner.kv_capacity_tokens = 20000;
  cfg.runner.lora_load_latency_s = 2e-3;
  cfg.consolidation_interval_s = 10.0;
  return cfg;
}

std::vector<TraceRequest> ShortTrace(int n, Popularity pop,
                                     double arrival_rate = 0.0) {
  TraceSpec spec;
  spec.num_requests = n;
  spec.popularity = pop;
  spec.lengths.prompt_mu = 3.5;
  spec.lengths.prompt_sigma = 0.7;
  spec.lengths.output_mu = 2.8;
  spec.lengths.output_sigma = 0.5;
  auto trace = GenerateClosedLoopTrace(spec);
  if (arrival_rate > 0.0) {
    Pcg32 rng(31337);
    double t = 0.0;
    for (auto& r : trace) {
      t += rng.NextExponential(arrival_rate);
      r.arrival_time = t;
    }
  }
  return trace;
}

TEST(ClusterTest, DrainsAllRequests) {
  CostModel cm((A100Sxm80GB()));
  ClusterDriver driver(SmallCluster(2), &cm);
  auto trace = ShortTrace(40, Popularity::kUniform);
  driver.SubmitTrace(trace);
  driver.Run();
  const ClusterStats& s = driver.stats();
  EXPECT_EQ(s.finished_requests, 40);
  EXPECT_EQ(s.total_new_tokens, TotalOutputTokens(trace));
  EXPECT_EQ(driver.scheduler().queue_size(), 0u);
  EXPECT_GT(s.makespan, 0.0);
  for (const auto& req : driver.requests()) {
    EXPECT_EQ(req.phase, RequestPhase::kFinished);
    EXPECT_GE(req.finish_time, req.arrival_time);
    EXPECT_GE(req.finish_time, req.first_token_time);
  }
}

TEST(ClusterTest, DeterministicAcrossRuns) {
  CostModel cm((A100Sxm80GB()));
  auto trace = ShortTrace(30, Popularity::kSkewed, /*arrival_rate=*/5.0);
  ClusterDriver d1(SmallCluster(2), &cm);
  d1.SubmitTrace(trace);
  d1.Run();
  ClusterDriver d2(SmallCluster(2), &cm);
  d2.SubmitTrace(trace);
  d2.Run();
  EXPECT_DOUBLE_EQ(d1.stats().makespan, d2.stats().makespan);
  EXPECT_EQ(d1.stats().total_steps, d2.stats().total_steps);
  EXPECT_EQ(d1.stats().migrations, d2.stats().migrations);
}

TEST(ClusterTest, ConsolidatesOntoFewGpusUnderLightLoad) {
  // Light open-loop load on 4 GPUs: traffic should concentrate (busy stays
  // busy, idle stays idle), leaving some GPUs completely unused.
  CostModel cm((A100Sxm80GB()));
  ClusterDriver driver(SmallCluster(4), &cm);
  auto trace = ShortTrace(60, Popularity::kSkewed, /*arrival_rate=*/3.0);
  driver.SubmitTrace(trace);
  driver.Run();
  int unused = 0;
  for (double busy : driver.stats().gpu_busy_s) {
    if (busy == 0.0) ++unused;
  }
  EXPECT_GE(unused, 1);
  // The highest-UUID GPU carries the most load.
  EXPECT_GT(driver.stats().gpu_busy_s[3], driver.stats().gpu_busy_s[0]);
}

TEST(ClusterTest, MoreGpusFinishFasterUnderHeavyLoad) {
  CostModel cm((A100Sxm80GB()));
  auto trace = ShortTrace(120, Popularity::kUniform);
  ClusterDriver d1(SmallCluster(1), &cm);
  d1.SubmitTrace(trace);
  d1.Run();
  ClusterDriver d4(SmallCluster(4), &cm);
  d4.SubmitTrace(trace);
  d4.Run();
  EXPECT_LT(d4.stats().makespan, d1.stats().makespan);
}

TEST(ClusterTest, KvPressureTriggersMigration) {
  CostModel cm((A100Sxm80GB()));
  ClusterConfig cfg = SmallCluster(2);
  cfg.runner.kv_capacity_tokens = 600;  // tight cache forces migrations
  cfg.runner.max_batch_size = 8;
  ClusterDriver driver(cfg, &cm);
  TraceSpec spec;
  spec.num_requests = 16;
  spec.popularity = Popularity::kIdentical;
  spec.lengths.prompt_mu = 4.5;  // long prompts
  spec.lengths.prompt_sigma = 0.3;
  spec.lengths.output_mu = 4.5;  // long outputs keep kv growing
  spec.lengths.output_sigma = 0.3;
  auto trace = GenerateClosedLoopTrace(spec);
  driver.SubmitTrace(trace);
  driver.Run();
  EXPECT_EQ(driver.stats().finished_requests, 16);
  EXPECT_GT(driver.stats().migrations, 0);
}

TEST(ClusterTest, BatchSizeNeverExceedsMax) {
  CostModel cm((A100Sxm80GB()));
  ClusterConfig cfg = SmallCluster(2);
  ClusterDriver driver(cfg, &cm);
  driver.SubmitTrace(ShortTrace(80, Popularity::kUniform));
  driver.Run();
  EXPECT_LE(driver.stats().step_batch_size.max(),
            cfg.runner.max_batch_size);
}

TEST(ClusterTest, TokenTimeSeriesSumsToTotal) {
  CostModel cm((A100Sxm80GB()));
  ClusterDriver driver(SmallCluster(2), &cm);
  auto trace = ShortTrace(30, Popularity::kUniform);
  driver.SubmitTrace(trace);
  driver.Run();
  const auto& stats = driver.stats();
  double horizon = stats.makespan + 1.0;
  auto windows = stats.tokens.Windows(1.0, horizon);
  double sum = 0.0;
  for (const auto& w : windows) sum += w.sum;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(stats.total_new_tokens));
}

TEST(ClusterTest, LoraLoadsDelayButDoNotDeadlock) {
  CostModel cm((A100Sxm80GB()));
  ClusterConfig cfg = SmallCluster(1);
  cfg.runner.lora_load_latency_s = 50e-3;  // very slow PCIe for the test
  ClusterDriver driver(cfg, &cm);
  driver.SubmitTrace(ShortTrace(10, Popularity::kDistinct));
  driver.Run();
  EXPECT_EQ(driver.stats().finished_requests, 10);
}

TEST(ClusterTest, OpenLoopLatencyReasonable) {
  CostModel cm((A100Sxm80GB()));
  ClusterDriver driver(SmallCluster(2), &cm);
  auto trace = ShortTrace(40, Popularity::kSkewed, /*arrival_rate=*/2.0);
  driver.SubmitTrace(trace);
  driver.Run();
  const auto& stats = driver.stats();
  EXPECT_EQ(stats.finished_requests, 40);
  EXPECT_GT(stats.request_latency.mean(), 0.0);
  EXPECT_GE(stats.request_latency.min(), 0.0);
  EXPECT_LE(stats.first_token_latency.mean(),
            stats.request_latency.mean());
}

}  // namespace
}  // namespace punica
