#include "sched/autoscale.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "gpu/specs.h"
#include "sched/cluster.h"
#include "sim/arrivals.h"
#include "workload/trace.h"

namespace punica {
namespace {

class AutoscaleTest : public ::testing::Test {
 protected:
  AutoscaleTest() : cm_(A100Sxm80GB()) {
    config_.max_batch_size = 4;
    config_.kv_capacity_tokens = 5000;
  }

  void MakeCluster(int gpus) {
    std::vector<ExecutionBackend*> raw;
    for (int g = 0; g < gpus; ++g) {
      runners_.push_back(
          std::make_unique<GpuRunner>(g, config_, Llama7B(), &cm_));
      raw.push_back(runners_.back().get());
    }
    sched_ = std::make_unique<Scheduler>(raw);
  }

  ServingRequest* NewRequest() {
    requests_.push_back(std::make_unique<ServingRequest>(
        ServingRequest{.id = next_id_++,
                       .lora_id = -1,
                       .prompt_len = 10,
                       .output_len = 100,
                       .arrival_time = 0.0}));
    return requests_.back().get();
  }

  CostModel cm_;
  RunnerConfig config_;
  std::vector<std::unique_ptr<GpuRunner>> runners_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<std::unique_ptr<ServingRequest>> requests_;
  std::int64_t next_id_ = 0;
};

TEST_F(AutoscaleTest, ReleasesIdleGpusWithHysteresis) {
  MakeCluster(4);
  AutoscaleController ctl(sched_.get(),
                          {.min_gpus = 1, .release_after_idle_ticks = 2});
  EXPECT_EQ(ctl.active_gpus(), 4);
  // Tick 1: idle counts reach 1 — nothing released yet.
  auto d1 = ctl.Tick();
  EXPECT_EQ(d1.released_gpu, -1);
  // Tick 2: GPU 0 (lowest UUID) released.
  auto d2 = ctl.Tick();
  EXPECT_EQ(d2.released_gpu, 0);
  EXPECT_EQ(ctl.active_gpus(), 3);
  // Further ticks drain to min_gpus and stop.
  ctl.Tick();
  ctl.Tick();
  ctl.Tick();
  ctl.Tick();
  EXPECT_EQ(ctl.active_gpus(), 1);
  EXPECT_EQ(ctl.total_releases(), 3);
}

TEST_F(AutoscaleTest, BusyGpusAreNotReleased) {
  MakeCluster(2);
  runners_[0]->Admit(NewRequest(), 0.0);
  runners_[1]->Admit(NewRequest(), 0.0);
  AutoscaleController ctl(sched_.get(),
                          {.min_gpus = 1, .release_after_idle_ticks = 1});
  for (int i = 0; i < 5; ++i) ctl.Tick();
  EXPECT_EQ(ctl.active_gpus(), 2);
  EXPECT_EQ(ctl.total_releases(), 0);
}

TEST_F(AutoscaleTest, AcquiresWhenSaturated) {
  MakeCluster(3);
  AutoscaleController ctl(sched_.get(),
                          {.min_gpus = 1, .release_after_idle_ticks = 1});
  // Drain to 1 GPU.
  while (ctl.active_gpus() > 1) ctl.Tick();
  ASSERT_EQ(ctl.active_gpus(), 1);
  ASSERT_TRUE(sched_->IsGpuEnabled(2));  // highest UUID stays

  // Saturate the remaining GPU (max batch 4 → 3/4 threshold is 3).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sched_->Submit(NewRequest(), 0.0), 2);
  }
  auto d = ctl.Tick();
  EXPECT_NE(d.acquired_gpu, -1);
  EXPECT_EQ(ctl.active_gpus(), 2);
  EXPECT_EQ(ctl.total_acquisitions(), 1);
  // The newly acquired GPU is routable.
  EXPECT_EQ(sched_->Submit(NewRequest(), 0.0), d.acquired_gpu);
}

TEST_F(AutoscaleTest, NeverExceedsMaxGpus) {
  MakeCluster(2);
  AutoscaleController ctl(sched_.get(), {.min_gpus = 1, .max_gpus = 2});
  // Saturate both GPUs.
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 4; ++i) {
      runners_[static_cast<std::size_t>(g)]->Admit(NewRequest(), 0.0);
    }
  }
  auto d = ctl.Tick();
  EXPECT_EQ(d.acquired_gpu, -1);  // pool exhausted
  EXPECT_EQ(ctl.active_gpus(), 2);
}

TEST_F(AutoscaleTest, DisabledGpuReceivesNoRequests) {
  MakeCluster(2);
  sched_->SetGpuEnabled(0, false);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sched_->Submit(NewRequest(), 0.0), 1);
  }
  // GPU 1 full, GPU 0 disabled → queue.
  EXPECT_EQ(sched_->Submit(NewRequest(), 0.0), -1);
  EXPECT_EQ(sched_->queue_size(), 1u);
  EXPECT_EQ(runners_[0]->working_set_size(), 0);
}

TEST_F(AutoscaleTest, ReEnablingServesQueue) {
  MakeCluster(2);
  sched_->SetGpuEnabled(0, false);
  for (int i = 0; i < 5; ++i) sched_->Submit(NewRequest(), 0.0);
  ASSERT_EQ(sched_->queue_size(), 1u);
  sched_->SetGpuEnabled(0, true);
  auto touched = sched_->PumpQueue(0.0);
  ASSERT_EQ(touched.size(), 1u);
  EXPECT_EQ(touched[0], 0);
  EXPECT_EQ(sched_->queue_size(), 0u);
}

TEST_F(AutoscaleTest, AdviseIgnoresDisabledGpus) {
  MakeCluster(2);
  sched_->SetGpuEnabled(0, false);
  // GPU 1 saturated ⇒ no lightly loaded *enabled* GPU ⇒ need more.
  for (int i = 0; i < 4; ++i) runners_[1]->Admit(NewRequest(), 0.0);
  auto advice = sched_->Advise();
  EXPECT_TRUE(advice.need_more_gpus);
  EXPECT_TRUE(advice.releasable_gpus.empty());  // GPU 0 not listed
}

TEST_F(AutoscaleTest, NeverReleasesBelowMin) {
  MakeCluster(3);
  AutoscaleController ctl(sched_.get(),
                          {.min_gpus = 2, .release_after_idle_ticks = 1});
  for (int i = 0; i < 10; ++i) ctl.Tick();
  EXPECT_EQ(ctl.active_gpus(), 2);
}

// --- Driver-level integration: autoscaling over a ramped open-loop load ---

TEST(AutoscaleClusterTest, TracksRampLoadAndFinishesEverything) {
  CostModel cm((A100Sxm80GB()));
  ClusterConfig cfg;
  cfg.num_gpus = 6;
  cfg.model = Llama7B();
  cfg.runner.max_batch_size = 8;
  cfg.runner.kv_capacity_tokens = 20000;
  cfg.enable_autoscale = true;
  cfg.initial_gpus = 1;
  cfg.autoscale_interval_s = 5.0;
  cfg.autoscale.min_gpus = 1;
  cfg.autoscale.release_after_idle_ticks = 2;
  ClusterDriver driver(cfg, &cm);

  Pcg32 rng(808);
  auto arrivals = PoissonArrivals(
      [](double t) { return RampRate(t, 240.0, 8.0); }, 8.0, 240.0, rng);
  TraceSpec spec;
  spec.num_requests = static_cast<int>(arrivals.size());
  spec.lengths.prompt_mu = 3.5;
  spec.lengths.prompt_sigma = 0.7;
  spec.lengths.output_mu = 3.0;
  spec.lengths.output_sigma = 0.5;
  auto trace = GenerateClosedLoopTrace(spec);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_time = arrivals[i];
  }
  driver.SubmitTrace(trace);
  driver.Run();

  const ClusterStats& s = driver.stats();
  EXPECT_EQ(s.finished_requests, static_cast<std::int64_t>(trace.size()));
  // The controller scaled up under the ramp and released afterwards.
  EXPECT_GT(s.gpu_acquisitions, 0);
  EXPECT_GT(s.gpu_releases, 0);
  // Active-GPU time series peaked above the starting size.
  double peak = 0.0;
  for (double v : s.active_gpus.values()) peak = std::max(peak, v);
  EXPECT_GT(peak, 1.0);
}

TEST(AutoscaleClusterTest, DisabledAutoscaleKeepsAllGpus) {
  CostModel cm((A100Sxm80GB()));
  ClusterConfig cfg;
  cfg.num_gpus = 3;
  cfg.model = Llama7B();
  cfg.runner.max_batch_size = 8;
  cfg.runner.kv_capacity_tokens = 20000;
  cfg.enable_autoscale = false;
  ClusterDriver driver(cfg, &cm);
  TraceSpec spec;
  spec.num_requests = 10;
  driver.SubmitTrace(GenerateClosedLoopTrace(spec));
  driver.Run();
  EXPECT_EQ(driver.stats().gpu_acquisitions, 0);
  EXPECT_EQ(driver.stats().gpu_releases, 0);
  EXPECT_EQ(driver.scheduler().num_enabled_gpus(), 3);
}

TEST(AutoscaleDeathTest, ReleasingBusyGpuAborts) {
  CostModel cm((A100Sxm80GB()));
  RunnerConfig cfg;
  cfg.max_batch_size = 4;
  cfg.kv_capacity_tokens = 1000;
  GpuRunner r0(0, cfg, Llama7B(), &cm);
  GpuRunner r1(1, cfg, Llama7B(), &cm);
  Scheduler sched({&r0, &r1});
  ServingRequest req{.id = 1, .lora_id = -1, .prompt_len = 10,
                     .output_len = 5, .arrival_time = 0.0};
  r0.Admit(&req, 0.0);
  EXPECT_DEATH(sched.SetGpuEnabled(0, false), "active requests");
}

}  // namespace
}  // namespace punica
