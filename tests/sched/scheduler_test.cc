#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gpu/specs.h"
#include "runtime/runner.h"
#include "util/rng.h"

namespace punica {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : cm_(A100Sxm80GB()) {
    config_.max_batch_size = 4;
    config_.kv_capacity_tokens = 500;
  }

  void MakeCluster(int gpus) {
    std::vector<ExecutionBackend*> raw;
    for (int g = 0; g < gpus; ++g) {
      runners_.push_back(
          std::make_unique<GpuRunner>(g, config_, Llama7B(), &cm_));
      raw.push_back(runners_.back().get());
    }
    sched_ = std::make_unique<Scheduler>(raw);
  }

  ServingRequest* NewRequest(LoraId lora, std::int32_t prompt,
                             std::int32_t output, double arrival = 0.0) {
    requests_.push_back(std::make_unique<ServingRequest>(
        ServingRequest{.id = next_id_++,
                       .lora_id = lora,
                       .prompt_len = prompt,
                       .output_len = output,
                       .arrival_time = arrival}));
    return requests_.back().get();
  }

  CostModel cm_;
  RunnerConfig config_;
  std::vector<std::unique_ptr<GpuRunner>> runners_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<std::unique_ptr<ServingRequest>> requests_;
  std::int64_t next_id_ = 0;
};

TEST_F(SchedulerTest, EmptyClusterTieBreaksToHighestUuid) {
  MakeCluster(4);
  int gpu = sched_->Submit(NewRequest(0, 10, 5), 0.0);
  EXPECT_EQ(gpu, 3);  // all empty → highest UUID wins
}

TEST_F(SchedulerTest, PrefersLargestWorkingSet) {
  MakeCluster(3);
  // Load GPU 1 with two requests directly.
  runners_[1]->Admit(NewRequest(0, 10, 5), 0.0);
  runners_[1]->Admit(NewRequest(0, 10, 5), 0.0);
  runners_[0]->Admit(NewRequest(0, 10, 5), 0.0);
  int gpu = sched_->Submit(NewRequest(0, 10, 5), 0.0);
  EXPECT_EQ(gpu, 1);  // 2 > 1 > 0
}

TEST_F(SchedulerTest, SkipsFullGpus) {
  MakeCluster(2);
  for (int i = 0; i < 4; ++i) runners_[1]->Admit(NewRequest(0, 10, 5), 0.0);
  int gpu = sched_->Submit(NewRequest(0, 10, 5), 0.0);
  EXPECT_EQ(gpu, 0);  // GPU 1 at max batch
}

TEST_F(SchedulerTest, QueuesWhenAllFull) {
  MakeCluster(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sched_->Submit(NewRequest(0, 10, 50), 0.0), 0);
  }
  EXPECT_EQ(sched_->Submit(NewRequest(0, 10, 50), 0.0), -1);
  EXPECT_EQ(sched_->queue_size(), 1u);
}

TEST_F(SchedulerTest, KvConstraintRespected) {
  MakeCluster(1);
  // Backbone requests (lora -1) run immediately — no adapter-load delay.
  EXPECT_EQ(sched_->Submit(NewRequest(-1, 400, 50), 0.0), 0);
  runners_[0]->Step(0.0);  // kv now 400/500
  // A 200-token prompt does not fit; must queue despite batch room.
  EXPECT_EQ(sched_->Submit(NewRequest(-1, 200, 50), 0.0), -1);
}

TEST_F(SchedulerTest, PumpQueueAdmitsFcfs) {
  MakeCluster(1);
  for (int i = 0; i < 4; ++i) sched_->Submit(NewRequest(0, 10, 2, 0.0), 0.0);
  ServingRequest* q1 = NewRequest(0, 10, 2, 1.0);
  ServingRequest* q2 = NewRequest(0, 10, 2, 2.0);
  sched_->Submit(q1, 2.5);
  sched_->Submit(q2, 2.5);
  EXPECT_EQ(sched_->queue_size(), 2u);

  // Finish everything on GPU 0: prefill + decode steps.
  double t = 3.0;
  while (runners_[0]->HasRunnableWork(t)) {
    StepResult s = runners_[0]->Step(t);
    t += s.latency;
    if (!s.finished.empty()) break;
  }
  auto touched = sched_->PumpQueue(t);
  EXPECT_FALSE(touched.empty());
  // q1 (earlier arrival) admitted before q2.
  EXPECT_EQ(q1->phase, RequestPhase::kAssigned);
}

TEST_F(SchedulerTest, FcfsNewRequestCannotJumpQueue) {
  MakeCluster(1);
  for (int i = 0; i < 4; ++i) sched_->Submit(NewRequest(0, 10, 50, 0.0), 0.0);
  ServingRequest* waiting = NewRequest(0, 10, 5, 1.0);
  sched_->Submit(waiting, 1.0);
  ASSERT_EQ(sched_->queue_size(), 1u);
  // Even though no GPU can take anyone, a later request must queue *behind*.
  ServingRequest* later = NewRequest(0, 10, 5, 2.0);
  EXPECT_EQ(sched_->Submit(later, 2.0), -1);
  EXPECT_EQ(sched_->queue().front(), waiting);
  EXPECT_EQ(sched_->queue().back(), later);
}

TEST_F(SchedulerTest, CancelFromQueueAndGpu) {
  MakeCluster(1);
  ServingRequest* on_gpu = NewRequest(0, 10, 5);
  sched_->Submit(on_gpu, 0.0);
  for (int i = 0; i < 3; ++i) sched_->Submit(NewRequest(0, 10, 5), 0.0);
  ServingRequest* queued = NewRequest(0, 10, 5, 1.0);
  sched_->Submit(queued, 1.0);

  EXPECT_TRUE(sched_->Cancel(queued->id));
  EXPECT_EQ(queued->phase, RequestPhase::kCancelled);
  EXPECT_EQ(sched_->queue_size(), 0u);

  EXPECT_TRUE(sched_->Cancel(on_gpu->id));
  EXPECT_EQ(on_gpu->phase, RequestPhase::kCancelled);
  EXPECT_EQ(runners_[0]->working_set_size(), 3);

  EXPECT_FALSE(sched_->Cancel(123456));
}

TEST_F(SchedulerTest, KvPressureMigratesNewestToAnotherGpu) {
  config_.kv_capacity_tokens = 150;
  MakeCluster(2);
  // Fill GPU 1 (highest UUID gets traffic first).
  ServingRequest* a = NewRequest(-1, 60, 100, 0.0);
  ServingRequest* b = NewRequest(-1, 60, 100, 0.1);
  EXPECT_EQ(sched_->Submit(a, 0.0), 1);
  EXPECT_EQ(sched_->Submit(b, 0.1), 1);
  runners_[1]->Step(0.2);  // prefill a → kv 60
  runners_[1]->Step(0.3);  // prefill b + decode a → kv 121
  // Growth of 2/step: pressure soon. Force the check:
  std::int64_t migrations = 0;
  // kv 121 + next step growth 2 < 150 → no victims yet.
  EXPECT_TRUE(sched_->MigrateForKvPressure(1, 0.4, &migrations).empty());
  // Run decode steps until pressure hits.
  double t = 0.5;
  while (runners_[1]->SelectEvictionVictims(t).empty()) {
    runners_[1]->Step(t);
    t += 0.1;
    ASSERT_LT(t, 10.0) << "pressure never materialised";
  }
  auto touched = sched_->MigrateForKvPressure(1, t, &migrations);
  EXPECT_EQ(migrations, 1);
  ASSERT_EQ(touched.size(), 1u);
  EXPECT_EQ(touched[0], 0);          // bounced to the other GPU
  EXPECT_EQ(b->migrations, 1);       // newest request moved
  EXPECT_EQ(runners_[0]->Find(b->id), b);
  EXPECT_GT(b->generated, 0);        // progress preserved
}

TEST_F(SchedulerTest, ConsolidationMovesFromLightToBusy) {
  MakeCluster(2);
  // GPU 0: one request (light). GPU 1: two requests (busy).
  ServingRequest* lonely = NewRequest(-1, 10, 50);
  runners_[0]->Admit(lonely, 0.0);
  runners_[1]->Admit(NewRequest(-1, 10, 50), 0.0);
  runners_[1]->Admit(NewRequest(-1, 10, 50), 0.0);

  std::int64_t migrations = 0;
  int receiver = sched_->ConsolidateOnce(1.0, &migrations);
  EXPECT_EQ(receiver, 1);
  EXPECT_EQ(migrations, 1);
  EXPECT_EQ(runners_[0]->working_set_size(), 0);  // donor drained
  EXPECT_EQ(runners_[1]->working_set_size(), 3);
  EXPECT_EQ(lonely->migrations, 1);
}

TEST_F(SchedulerTest, ConsolidationNoOpWhenBalancedOrEmpty) {
  MakeCluster(2);
  std::int64_t migrations = 0;
  EXPECT_EQ(sched_->ConsolidateOnce(0.0, &migrations), -1);  // all empty
  runners_[0]->Admit(NewRequest(-1, 10, 5), 0.0);
  runners_[1]->Admit(NewRequest(-1, 10, 5), 0.0);
  // Equal load: no strictly-busier receiver.
  EXPECT_EQ(sched_->ConsolidateOnce(0.0, &migrations), -1);
  EXPECT_EQ(migrations, 0);
}

TEST_F(SchedulerTest, ConsolidationRespectsReceiverConstraints) {
  MakeCluster(2);
  runners_[0]->Admit(NewRequest(-1, 10, 5), 0.0);
  for (int i = 0; i < 4; ++i) runners_[1]->Admit(NewRequest(-1, 10, 5), 0.0);
  std::int64_t migrations = 0;
  // Receiver full → no move.
  EXPECT_EQ(sched_->ConsolidateOnce(0.0, &migrations), -1);
}

TEST_F(SchedulerTest, ScaleAdvice) {
  MakeCluster(2);
  auto advice = sched_->Advise();
  EXPECT_FALSE(advice.need_more_gpus);
  EXPECT_EQ(advice.releasable_gpus.size(), 2u);

  // Saturate both GPUs (max_batch 4, ¾ threshold = 3).
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 4; ++i) {
      runners_[static_cast<std::size_t>(g)]->Admit(NewRequest(-1, 10, 5), 0.0);
    }
  }
  advice = sched_->Advise();
  EXPECT_TRUE(advice.need_more_gpus);
  EXPECT_TRUE(advice.releasable_gpus.empty());
}

TEST_F(SchedulerTest, RandomisedStressInvariants) {
  // Random interleaving of submissions, steps, cancellations, migrations
  // and consolidation; after every operation the structural invariants must
  // hold: batch-size cap, KvCache cap, FCFS-ordered queue, and no request
  // lost or duplicated.
  config_.max_batch_size = 3;
  config_.kv_capacity_tokens = 400;
  MakeCluster(3);
  Pcg32 rng(31415);
  double t = 0.0;
  std::int64_t migrations = 0;
  std::size_t cancelled = 0;

  for (int op = 0; op < 3000; ++op) {
    std::uint32_t action = rng.NextBounded(10);
    t += 0.01;
    if (action < 4) {  // submit
      auto* req = NewRequest(-1, 5 + static_cast<std::int32_t>(
                                     rng.NextBounded(60)),
                             1 + static_cast<std::int32_t>(
                                     rng.NextBounded(30)),
                             t);
      sched_->Submit(req, t);
    } else if (action < 8) {  // step a random GPU (evicting first if needed)
      int g = static_cast<int>(rng.NextBounded(3));
      sched_->MigrateForKvPressure(g, t, &migrations);
      if (runners_[static_cast<std::size_t>(g)]->HasRunnableWork(t)) {
        runners_[static_cast<std::size_t>(g)]->Step(t);
        sched_->PumpQueue(t);
      }
    } else if (action < 9) {  // cancel a random live request
      if (!requests_.empty()) {
        auto& req = requests_[rng.NextBounded(
            static_cast<std::uint32_t>(requests_.size()))];
        if (req->phase == RequestPhase::kQueued ||
            req->phase == RequestPhase::kAssigned) {
          ASSERT_TRUE(sched_->Cancel(req->id));
          ++cancelled;
          sched_->PumpQueue(t);
        }
      }
    } else {  // consolidate
      sched_->ConsolidateOnce(t, &migrations);
    }

    // Invariants.
    std::size_t assigned = 0;
    for (const auto& r : runners_) {
      ASSERT_LE(r->working_set_size(), config_.max_batch_size);
      ASSERT_LE(r->kv_used_tokens(), config_.kv_capacity_tokens);
      ASSERT_GE(r->kv_used_tokens(), 0);
      assigned += static_cast<std::size_t>(r->working_set_size());
    }
    const auto& q = sched_->queue();
    for (std::size_t i = 1; i < q.size(); ++i) {
      ASSERT_LE(q[i - 1]->arrival_time, q[i]->arrival_time) << "FCFS broken";
    }
    // Conservation: every request is exactly one of queued / assigned /
    // finished / cancelled.
    std::size_t finished = 0;
    std::size_t queued_or_assigned = 0;
    for (const auto& r : requests_) {
      switch (r->phase) {
        case RequestPhase::kFinished:
          ++finished;
          break;
        case RequestPhase::kCancelled:
          break;
        default:
          ++queued_or_assigned;
      }
    }
    ASSERT_EQ(queued_or_assigned, q.size() + assigned);
  }
  EXPECT_GT(cancelled, 0u);  // the stress actually exercised cancellation
}

TEST_F(SchedulerTest, BusyStaysBusyProperty) {
  // The paper's consolidation attribute: new requests pile onto the busiest
  // feasible GPU, so ordering of working-set sizes is preserved.
  MakeCluster(3);
  runners_[2]->Admit(NewRequest(-1, 10, 99), 0.0);
  runners_[2]->Admit(NewRequest(-1, 10, 99), 0.0);
  runners_[1]->Admit(NewRequest(-1, 10, 99), 0.0);
  for (int i = 0; i < 2; ++i) {
    int gpu = sched_->Submit(NewRequest(-1, 10, 99), 0.0);
    EXPECT_EQ(gpu, 2);
  }
  // GPU 2 now full (4): next goes to GPU 1 (the next busiest), never 0.
  EXPECT_EQ(sched_->Submit(NewRequest(-1, 10, 99), 0.0), 1);
  EXPECT_EQ(runners_[0]->working_set_size(), 0);  // idle stays idle
}

TEST_F(SchedulerTest, PrefixAffinityOverridesLoadConcentration) {
  MakeCluster(2);
  // GPU 0 serves (and finishes) a tenant-7 request, leaving its system
  // prompt cached there; GPU 1 is busier.
  ServingRequest* warm = NewRequest(-1, 100, 1);
  warm->shared_prefix_len = 60;
  warm->prefix_group = 7;
  runners_[0]->Admit(warm, 0.0);
  runners_[0]->Step(0.0);  // prefill + finish → prefix cached, GPU 0 idle
  ASSERT_EQ(runners_[0]->working_set_size(), 0);
  runners_[1]->Admit(NewRequest(-1, 10, 99), 0.0);

  // Load concentration alone would route to GPU 1 (largest working set);
  // the cached tenant prefix on GPU 0 must win.
  ServingRequest* mate = NewRequest(-1, 100, 5);
  mate->shared_prefix_len = 60;
  mate->prefix_group = 7;
  EXPECT_EQ(sched_->Submit(mate, 0.0), 0);

  // A tenant with no cached prefix anywhere still follows load
  // concentration.
  EXPECT_EQ(sched_->Submit(NewRequest(-1, 10, 5), 0.0), 1);
}

}  // namespace
}  // namespace punica
