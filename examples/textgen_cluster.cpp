// Real text generation through the full serving stack (paper Fig. 2):
//
//     Frontend → ClusterDriver → Scheduler → EngineBackend → Engine
//
// This is the unified-API payoff: the same frontend/scheduler/driver that
// runs cluster-scale simulations here drives two *numeric* engines over one
// shared tiny-Llama backbone, and every token streamed back to a user is a
// real model output. The demo cross-checks the whole stack: each stream
// must be bit-identical to driving an Engine directly with the same seed.
//
//     cmake -B build -G Ninja && cmake --build build
//     ./build/examples/textgen_cluster [--weight-dtype f16|q8_0|q4_0]
//                                      [--tp N]
//
// --tp N shards the backbone Megatron-style over N ranks, each running
// concurrently on its own disjoint worker group of the shared pool (the
// CPU analogue of N GPUs). The tenants' LoRA adapters shard right along
// with it — B column-parallel at the Q/K/V/Gate/Up seams, A row-parallel
// at O/Down, each rank's SGMV delta folding through the backbone's
// existing all-reduce — and every multi-tenant stream must STILL be
// bit-identical to the solo single-engine runs, because the
// fixed-rank-order all-reduce keeps TP execution deterministic.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "frontend/frontend.h"
#include "model/llama.h"
#include "model/tensor_parallel.h"
#include "runtime/engine.h"
#include "runtime/engine_backend.h"
#include "sched/cluster.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "util/compute_context.h"

using namespace punica;

namespace {

std::string Render(const std::vector<std::int32_t>& tokens) {
  std::string s;
  for (auto t : tokens) s += std::to_string(t) + " ";
  return s;
}

struct Args {
  WeightDtype dtype = WeightDtype::kF16;
  int tp = 1;
};

// --weight-dtype f16|q8_0|q4_0 (default f16): backbone weight storage.
// --tp N (default 1): tensor-parallel degree.
Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--weight-dtype") == 0 && i + 1 < argc) {
      if (!ParseWeightDtype(argv[++i], &args.dtype)) {
        std::fprintf(stderr, "unknown weight dtype '%s' (f16|q8_0|q4_0)\n",
                     argv[i]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--tp") == 0 && i + 1 < argc) {
      args.tp = std::atoi(argv[++i]);
      if (args.tp < 1 || args.tp > 4 || (args.tp & (args.tp - 1)) != 0) {
        std::fprintf(stderr, "--tp must be 1, 2 or 4\n");
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--weight-dtype f16|q8_0|q4_0] [--tp N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  // The compute substrate: one thread pool shared by every engine over this
  // backbone (PUNICA_THREADS or hardware_concurrency wide). Streams are
  // bit-identical whatever the width — rerun under PUNICA_THREADS=1 to see.
  ComputeContext compute;
  // One backbone copy shared by every "GPU", plus per-tenant LoRA models.
  // The backbone stores its dense projections at --weight-dtype; the solo
  // reference engines below share the same model object, so the
  // bit-identity check holds at every dtype (quantized decode is
  // deterministic too, it is just a different model than f16).
  Args args = ParseArgs(argc, argv);
  LlamaConfig config = TinyLlama();
  config.weight_dtype = args.dtype;
  if (args.tp > 1) {
    // Every swept degree must divide the KV heads; TinyLlama's 4:2 GQA
    // only divides by 2, so TP mode runs the 1:1-heads variant.
    config.num_kv_heads = config.num_heads;
  }
  LlamaModel model(config, /*seed=*/1234, &compute, args.tp);
  // At tp > 1 AddLora also distributes each adapter over the ranks
  // (ShardLoraModel); rank 4 at tp 4 exercises the rank-not-divisible
  // case — the rank dimension never shards, only the seam dimensions do.
  model.AddLora(0, 8, 111);
  model.AddLora(1, 8, 222);
  model.AddLora(2, 4, 333);

  struct Tenant {
    const char* name;
    LoraId lora;
    std::vector<std::int32_t> prompt;
    int tokens;
  };
  std::vector<Tenant> tenants = {
      {"tenant-A (lora 0)", 0, {17, 3, 42, 7}, 10},
      {"tenant-B (lora 1)", 1, {99, 5}, 8},
      {"tenant-C (lora 2)", 2, {8, 8, 8}, 12},
      {"tenant-D (backbone)", -1, {1, 2, 3}, 6},
      {"tenant-E (lora 0)", 0, {64, 32, 16}, 9},
  };
  // Reference: each request alone on a dedicated engine.
  std::map<std::string, std::vector<std::int32_t>> reference;
  for (const auto& t : tenants) {
    Engine solo(&model, model.MakeKvConfig(256), {.max_batch_size = 1});
    RequestHandle id = solo.AddRequest({.lora = t.lora,
                                        .prompt_tokens = t.prompt,
                                        .max_new_tokens = t.tokens});
    while (solo.HasWork()) solo.Step();
    reference[t.name] = *solo.Output(id);
  }

  // The serving stack: two numeric engines behind the cluster scheduler.
  Engine e0(&model, model.MakeKvConfig(256), {.max_batch_size = 4});
  Engine e1(&model, model.MakeKvConfig(256), {.max_batch_size = 4});
  EngineBackend gpu0(0, &e0);
  EngineBackend gpu1(1, &e1);
  ClusterConfig cfg;
  cfg.consolidation_interval_s = 0.05;
  ClusterDriver driver({&gpu0, &gpu1}, cfg);

  Frontend::SchedulerApi api;
  api.submit = [&](ServingRequest* req) { driver.SubmitExternal(req); };
  api.cancel = [&](std::int64_t id) { return driver.CancelExternal(id); };
  Frontend frontend(0, api, /*id_base=*/1000);
  driver.SetEmissionCallback([&](const StepResult& result, double now) {
    frontend.OnStep(result, now);
  });

  // Submit every tenant and subscribe to their streams: tokens arrive as
  // the cluster generates them, nothing is buffered.
  std::map<std::string, std::vector<std::int32_t>> streamed;
  for (const auto& t : tenants) {
    RequestHandle h = frontend.Submit({.lora = t.lora,
                                       .prompt_tokens = t.prompt,
                                       .max_new_tokens = t.tokens});
    std::string name = t.name;
    frontend.Subscribe(h, [&streamed, name](std::int32_t token, double) {
      streamed[name].push_back(token);
    });
  }
  driver.Run();

  std::printf("Frontend → Scheduler → numeric Engine, %d backends, %zu "
              "tenants, %d compute threads\n",
              driver.num_backends(), tenants.size(),
              compute.num_threads());
  std::printf("backbone weights: %s, simd dispatch: %s\n",
              WeightDtypeName(config.weight_dtype), Simd().name);
  if (model.tp() > 1) {
    LlamaConfig rank = RankConfig(config, model.tp());
    std::printf("tensor parallel: tp=%d (%s), per-rank shard %d heads / "
                "%d kv / %d ffn, %.1f KiB per layer\n",
                model.tp(),
                model.tp_concurrent() ? "concurrent worker groups"
                                      : "serial rank loop",
                rank.num_heads, rank.num_kv_heads, rank.ffn_hidden,
                static_cast<double>(RankLayerBytes(config, model.tp())) /
                    1024.0);
    for (int r = 0; r < model.tp(); ++r) {
      const ComputeContext* rc = model.rank_context(r);
      std::printf("  rank %d → worker group %d (%d worker%s)\n", r,
                  rc != nullptr ? rc->group_index() : -1,
                  rc != nullptr ? rc->num_threads() : 0,
                  rc != nullptr && rc->num_threads() == 1 ? "" : "s");
    }
    // Per-rank adapter shard shapes (layer 0; all layers are identical):
    // the column seam slices B, the row seam slices A, and the rank
    // dimension never shards — CI greps these lines.
    for (LoraId id : {LoraId{0}, LoraId{1}, LoraId{2}}) {
      const TpShardedLora* s = model.GetLoraShards(id);
      if (s == nullptr) continue;
      for (int r = 0; r < model.tp(); ++r) {
        const LoraLayerWeights& l0 = s->ranks[static_cast<std::size_t>(r)]
                                         .layers.front();
        const LoraAB& q = l0.proj[static_cast<int>(Proj::kQ)];
        const LoraAB& o = l0.proj[static_cast<int>(Proj::kO)];
        std::printf("  lora %d rank-shard %d: Q A[%lld,%lld] B[%lld,%lld] "
                    "(col-sliced B) | O A[%lld,%lld] B[%lld,%lld] "
                    "(row-sliced A)\n",
                    static_cast<int>(id), r,
                    static_cast<long long>(q.a.dim(0)),
                    static_cast<long long>(q.a.dim(1)),
                    static_cast<long long>(q.b.dim(0)),
                    static_cast<long long>(q.b.dim(1)),
                    static_cast<long long>(o.a.dim(0)),
                    static_cast<long long>(o.a.dim(1)),
                    static_cast<long long>(o.b.dim(0)),
                    static_cast<long long>(o.b.dim(1)));
      }
    }
  }
  std::printf("\n");
  bool all_equal = true;
  for (const auto& t : tenants) {
    bool equal = streamed[t.name] == reference[t.name];
    all_equal = all_equal && equal;
    std::printf("  %-20s streamed: %s%s\n", t.name,
                Render(streamed[t.name]).c_str(),
                equal ? "" : "  MISMATCH vs solo run!");
  }
  const ClusterStats& stats = driver.stats();
  std::printf("\n%lld requests finished in %lld batched invocations "
              "(mean batch %.1f), %lld migrations\n",
              static_cast<long long>(stats.finished_requests),
              static_cast<long long>(stats.total_steps),
              stats.step_batch_size.mean(),
              static_cast<long long>(stats.migrations));
  std::printf("all streams bit-identical to solo engine runs: %s\n",
              all_equal ? "YES" : "NO");
  std::printf("frontend sessions live after streaming: %zu (subscribed "
              "sessions free themselves)\n",
              frontend.live_sessions());
  return all_equal ? 0 : 1;
}
