// Migration demo (paper §5.3): move an in-flight request between two
// engines ("GPUs") using the cancellation primitive + prompt-and-generated
// recomputation, and verify the token stream is identical to an
// uninterrupted run.
#include <cstdio>
#include <string>
#include <vector>

#include "model/llama.h"
#include "runtime/engine.h"

using namespace punica;

namespace {

std::string Render(const std::vector<std::int32_t>& tokens) {
  std::string s;
  for (auto t : tokens) s += std::to_string(t) + " ";
  return s;
}

}  // namespace

int main() {
  LlamaModel model(TinyLlama4L(), /*seed=*/555);
  model.AddLora(0, 8, 1);

  const std::vector<std::int32_t> prompt = {12, 34, 56, 78};
  const int want = 14;

  // Reference: uninterrupted generation on one engine.
  Engine reference(&model, model.MakeKvConfig(512));
  RequestHandle ref_id = reference.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = want});
  while (reference.HasWork()) reference.Step();
  std::printf("uninterrupted : %s\n", Render(*reference.Output(ref_id)).c_str());

  // GPU 1 serves the request for 6 steps, then the scheduler migrates it.
  Engine gpu1(&model, model.MakeKvConfig(512));
  RequestHandle id = gpu1.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = want});
  for (int i = 0; i < 6; ++i) gpu1.Step();
  std::printf("gpu1 (6 steps): %s<-- migrate here\n",
              Render(*gpu1.Output(id)).c_str());

  // Evict: cancellation releases GPU 1's KvCache and snapshots the request.
  auto snapshot = gpu1.Cancel(id);
  std::printf("gpu1 kv pages free after cancel: %d/%d\n",
              gpu1.kv_free_pages(), gpu1.kv_config().num_pages);

  // Add: GPU 2 re-prefills prompt + generated (recomputation — no KvCache
  // transfer) and continues streaming.
  Engine gpu2(&model, model.MakeKvConfig(512));
  RequestHandle id2 = gpu2.AddMigrated(*snapshot);
  while (gpu2.HasWork()) gpu2.Step();
  std::printf("gpu2 (resumed): %s\n", Render(*gpu2.Output(id2)).c_str());

  bool equal = *gpu2.Output(id2) == *reference.Output(ref_id);
  std::printf("\nstreams identical: %s\n", equal ? "YES" : "NO");
  return equal ? 0 : 1;
}
