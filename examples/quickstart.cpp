// Quickstart: serve multiple LoRA models over one shared backbone.
//
// This runs the real numeric path end to end on a tiny Llama-architecture
// model: one backbone copy, several LoRA adapters, and the Engine's
// continuous-batching loop (mixed prefill+decode invocations, SGMV-grouped
// batches, paged KvCache). Build and run:
//
//     cmake -B build -G Ninja && cmake --build build
//     ./build/examples/quickstart [--tp N]
//
// --tp N (1, 2 or 4) shards the backbone Megatron-style over N ranks
// running concurrently on disjoint worker groups — the CPU analogue of N
// GPUs. TP mode is backbone-only, so the LoRA tenants run without adapters
// there.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "model/llama.h"
#include "model/tensor_parallel.h"
#include "runtime/engine.h"

using namespace punica;

int main(int argc, char** argv) {
  int tp = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tp") == 0 && i + 1 < argc) {
      tp = std::atoi(argv[++i]);
    }
  }
  if (tp != 1 && tp != 2 && tp != 4) {
    std::fprintf(stderr, "usage: %s [--tp 1|2|4]\n", argv[0]);
    return 2;
  }

  // 1. One backbone model, shared by every tenant (the paper's key memory
  //    saving: a GPU holds a single copy of the pre-trained weights).
  LlamaConfig config = TinyLlama();
  if (tp > 1) config.num_kv_heads = config.num_heads;  // tp must divide KV
  LlamaModel model(config, /*seed=*/1234, /*ctx=*/nullptr, tp);
  std::printf("Backbone: %s (%lld params, %d layers)\n",
              config.name.c_str(),
              static_cast<long long>(config.total_params()),
              config.num_layers);
  if (tp > 1) {
    LlamaConfig rank = RankConfig(config, tp);
    std::printf("Tensor parallel: %d concurrent ranks, per-rank shard "
                "%d heads / %d kv / %d ffn (%lld bytes per layer)\n",
                tp, rank.num_heads, rank.num_kv_heads, rank.ffn_hidden,
                static_cast<long long>(RankLayerBytes(config, tp)));
    for (int r = 0; r < tp; ++r) {
      const ComputeContext* rc = model.rank_context(r);
      std::printf("  rank %d → worker group %d (%d worker%s)\n", r,
                  rc != nullptr ? rc->group_index() : -1,
                  rc != nullptr ? rc->num_threads() : 0,
                  rc != nullptr && rc->num_threads() == 1 ? "" : "s");
    }
  }

  // 2. Register LoRA adapters — one per tenant. Each is ~1% of the
  //    backbone's size (A [h_in, r] and B [r, h_out] per projection per
  //    layer). Skipped under TP: batches there are backbone-only.
  if (tp == 1) {
    model.AddLora(/*id=*/0, /*rank=*/8, /*seed=*/111);
    model.AddLora(/*id=*/1, /*rank=*/8, /*seed=*/222);
    model.AddLora(/*id=*/2, /*rank=*/4, /*seed=*/333);
  }
  std::printf("Registered %zu LoRA adapters (rank-8 adapter: %lld bytes vs "
              "%lld-byte backbone)\n\n",
              model.num_loras(),
              static_cast<long long>(config.lora_total_bytes(8)),
              static_cast<long long>(config.total_weight_bytes()));

  // 3. Start a serving engine (one per GPU) and submit requests for
  //    *different* LoRA models. They will be batched together: dense
  //    projections run as one GEMM, LoRA addons as SGMV over per-model
  //    segments.
  Engine engine(&model, model.MakeKvConfig(/*num_pages=*/512));
  struct Submission {
    const char* tenant;
    LoraId lora;
    std::vector<std::int32_t> prompt;
  };
  std::vector<Submission> submissions = {
      {"tenant-A (lora 0)", 0, {17, 3, 42, 7}},
      {"tenant-B (lora 1)", 1, {99, 5}},
      {"tenant-C (lora 2)", 2, {8, 8, 8}},
      {"tenant-D (backbone)", -1, {1, 2, 3}},
  };
  if (tp > 1) {
    for (auto& s : submissions) s.lora = -1;  // TP is backbone-only
  }
  std::vector<RequestHandle> ids;
  for (const auto& s : submissions) {
    ids.push_back(engine.AddRequest(
        {.lora = s.lora, .prompt_tokens = s.prompt, .max_new_tokens = 8}));
  }

  // 4. Run the continuous-batching loop. Each Step() is one batched model
  //    invocation; watch the SGMV segment count stay below the batch size
  //    as requests of the same adapter share segments.
  int step = 0;
  while (engine.HasWork()) {
    auto result = engine.Step();
    std::printf("step %2d: batch=%d prefills=%d sgmv-segments=%d "
                "emitted=%zu\n",
                ++step, result.batch_size, result.prefill_requests,
                result.num_segments, result.emitted.size());
  }

  // 5. Collect per-tenant outputs.
  std::printf("\nGenerated token streams:\n");
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    std::string line = "  " + std::string(submissions[i].tenant) + ": ";
    for (auto tok : *engine.Output(ids[i])) {
      line += std::to_string(tok) + " ";
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("\nAll four tenants were served by ONE backbone copy in %d "
              "batched invocations.\n",
              step);
  return 0;
}
