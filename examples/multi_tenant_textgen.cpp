// Multi-tenant serving comparison: the paper's single-GPU experiment
// (Fig. 11) at interactive scale. Simulates 300 requests with ShareGPT-like
// lengths through five serving systems × four LoRA popularity
// distributions on a modelled A100, and prints throughput plus why each
// system behaves the way it does.
#include <cstdio>

#include "baselines/systems.h"
#include "gpu/specs.h"
#include "util/table.h"
#include "workload/trace.h"

using namespace punica;

int main() {
  CostModel cm((A100Sxm80GB()));
  LlamaConfig model = Llama7B();

  std::printf("Multi-tenant LoRA serving on one modelled %s, %s\n\n",
              cm.gpu().name.c_str(), model.name.c_str());

  Table t({"system", "batching capability", "Distinct", "Uniform", "Skewed",
           "Identical"});
  for (ServingSystem sys : kAllServingSystems) {
    SystemTraits traits = TraitsOf(sys);
    std::string capability;
    if (traits.cross_lora_batching) {
      capability = "cross-LoRA continuous";
    } else if (traits.continuous_batching) {
      capability = "same-model continuous";
    } else {
      capability = "same-model, batch-to-completion";
    }
    std::vector<std::string> row = {traits.name, capability};
    for (Popularity pop : kAllPopularities) {
      TraceSpec spec;
      spec.num_requests = 300;
      spec.popularity = pop;
      spec.seed = 99;
      auto trace = GenerateClosedLoopTrace(spec);
      TextGenResult r = SimulateTextGen(sys, trace, model, cm);
      row.push_back(FormatDouble(r.throughput_tok_s, 0) + " tok/s");
    }
    t.AddRow(row);
  }
  t.Print();

  std::printf(
      "\nReading the table:\n"
      " * Baselines only batch requests of the SAME LoRA model, so their\n"
      "   throughput collapses when tenants are diverse (Distinct/Uniform/"
      "Skewed).\n"
      " * Punica's SGMV kernel batches ACROSS LoRA models; throughput is\n"
      "   nearly independent of the popularity distribution.\n"
      " * On Identical, vLLM (running backbone-only, no LoRA math at all)\n"
      "   is slightly ahead — the LoRA addon costs ~2 ms per token.\n");
  return 0;
}
