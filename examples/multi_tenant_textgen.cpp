// Multi-tenant serving comparison: the paper's single-GPU experiment
// (Fig. 11) at interactive scale. Simulates 300 requests with ShareGPT-like
// lengths through five serving systems × four LoRA popularity
// distributions on a modelled A100, and prints throughput plus why each
// system behaves the way it does. A second section serves real tenants on
// the numeric engine to show the shared-prefix KV cache working: pages in
// use, shared pages and prefix-hit tokens per admission.
#include <cstdio>
#include <cstring>
#include <vector>

#include "baselines/systems.h"
#include "gpu/specs.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "util/table.h"
#include "workload/trace.h"

using namespace punica;

namespace {

/// Real numerics: three tenants, each with its own system prompt, three
/// requests per tenant. Prints the live cache gauges after every admission
/// wave. The numeric backbone stores its dense projections at
/// `weight_dtype`; the shared-prefix machinery is dtype-oblivious.
void RunNumericSharedPrefixDemo(WeightDtype weight_dtype, int tp) {
  std::printf("\nShared-prefix KV cache on the numeric engine "
              "(tiny Llama, real tokens):\n");
  std::printf("backbone weights: %s, simd dispatch: %s, tp: %d\n\n",
              WeightDtypeName(weight_dtype), Simd().name, tp);
  LlamaConfig config = TinyLlama();
  config.weight_dtype = weight_dtype;
  if (tp > 1) {
    // Every swept degree must divide the KV heads; TinyLlama's 4:2 GQA
    // only divides by 2, so TP mode runs the 1:1-heads variant.
    config.num_kv_heads = config.num_heads;
  }
  LlamaModel model(config, /*seed=*/2024, /*ctx=*/nullptr, tp);
  // At tp > 1 each adapter is also distributed over the ranks: B
  // column-sliced at the Q/K/V/Gate/Up seams, A row-sliced at O/Down.
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  for (LoraId id : {LoraId{0}, LoraId{1}}) {
    const TpShardedLora* s = model.GetLoraShards(id);
    if (s == nullptr) continue;
    for (int r = 0; r < model.tp(); ++r) {
      const LoraLayerWeights& l0 =
          s->ranks[static_cast<std::size_t>(r)].layers.front();
      const LoraAB& q = l0.proj[static_cast<int>(Proj::kQ)];
      const LoraAB& o = l0.proj[static_cast<int>(Proj::kO)];
      std::printf("lora %d rank-shard %d: Q A[%lld,%lld] B[%lld,%lld] "
                  "(col-sliced B) | O A[%lld,%lld] B[%lld,%lld] "
                  "(row-sliced A)\n",
                  static_cast<int>(id), r,
                  static_cast<long long>(q.a.dim(0)),
                  static_cast<long long>(q.a.dim(1)),
                  static_cast<long long>(q.b.dim(0)),
                  static_cast<long long>(q.b.dim(1)),
                  static_cast<long long>(o.a.dim(0)),
                  static_cast<long long>(o.a.dim(1)),
                  static_cast<long long>(o.b.dim(0)),
                  static_cast<long long>(o.b.dim(1)));
    }
  }
  if (tp > 1) std::printf("\n");
  Engine engine(&model, model.MakeKvConfig(/*num_pages=*/128, /*page_size=*/4),
                EngineConfig{.max_batch_size = 9});

  // Per-tenant system prompts (the tokens every tenant-mate repeats).
  const std::vector<std::vector<std::int32_t>> system_prompts = {
      {10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
      {40, 41, 42, 43, 44, 45, 46, 47},
      {70, 71, 72, 73, 74, 75, 76, 77, 78, 79, 80, 81},
  };
  Table t({"admission", "prefill tokens", "hit tokens", "pages in use",
           "shared pages"});
  int wave = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t tenant = 0; tenant < system_prompts.size(); ++tenant) {
      std::vector<std::int32_t> prompt = system_prompts[tenant];
      // Each request appends its own user turn after the system prompt.
      prompt.push_back(static_cast<std::int32_t>(100 + wave));
      prompt.push_back(static_cast<std::int32_t>(200 + round));
      engine.AddRequest({.lora = static_cast<LoraId>(tenant % 2),
                         .prompt_tokens = prompt,
                         .max_new_tokens = 4});
      StepResult r = engine.Step();  // the admission's prefill
      PrefixCacheStats s = engine.prefix_cache_stats();
      t.AddRow({"tenant-" + std::to_string(tenant) + " req " +
                    std::to_string(round),
                std::to_string(r.prefill_tokens),
                std::to_string(r.prefix_hit_tokens),
                std::to_string(s.pages_in_use),
                std::to_string(s.shared_pages)});
      ++wave;
    }
  }
  while (engine.HasWork()) engine.Step();
  t.Print();
  PrefixCacheStats s = engine.prefix_cache_stats();
  std::printf("\n%s\n", s.Format().c_str());
  std::printf(
      "\nRound 0 prefills whole prompts (cold); later rounds prefill only\n"
      "each request's user turn — the tenant's system prompt is served by\n"
      "ref-counted page aliasing (the shared-pages gauge). Token streams\n"
      "are bit-identical to cold-start runs.\n");
}

struct Args {
  WeightDtype dtype = WeightDtype::kF16;
  int tp = 1;
};

// --weight-dtype f16|q8_0|q4_0 (default f16): storage for the numeric
// demo's backbone. --tp N (default 1) runs the numeric demo
// tensor-parallel, with both tenants' adapters sharded over the ranks.
// The simulated section is cost-model-only and unaffected by either.
Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--weight-dtype") == 0 && i + 1 < argc) {
      if (!ParseWeightDtype(argv[++i], &args.dtype)) {
        std::fprintf(stderr, "unknown weight dtype '%s' (f16|q8_0|q4_0)\n",
                     argv[i]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--tp") == 0 && i + 1 < argc) {
      args.tp = std::atoi(argv[++i]);
      if (args.tp < 1 || args.tp > 4 || (args.tp & (args.tp - 1)) != 0) {
        std::fprintf(stderr, "--tp must be 1, 2 or 4\n");
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--weight-dtype f16|q8_0|q4_0] [--tp N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  CostModel cm((A100Sxm80GB()));
  LlamaConfig model = Llama7B();

  std::printf("Multi-tenant LoRA serving on one modelled %s, %s\n\n",
              cm.gpu().name.c_str(), model.name.c_str());

  Table t({"system", "batching capability", "Distinct", "Uniform", "Skewed",
           "Identical"});
  for (ServingSystem sys : kAllServingSystems) {
    SystemTraits traits = TraitsOf(sys);
    std::string capability;
    if (traits.cross_lora_batching) {
      capability = "cross-LoRA continuous";
    } else if (traits.continuous_batching) {
      capability = "same-model continuous";
    } else {
      capability = "same-model, batch-to-completion";
    }
    std::vector<std::string> row = {traits.name, capability};
    for (Popularity pop : kAllPopularities) {
      TraceSpec spec;
      spec.num_requests = 300;
      spec.popularity = pop;
      spec.seed = 99;
      auto trace = GenerateClosedLoopTrace(spec);
      TextGenResult r = SimulateTextGen(sys, trace, model, cm);
      row.push_back(FormatDouble(r.throughput_tok_s, 0) + " tok/s");
    }
    t.AddRow(row);
  }
  t.Print();

  std::printf(
      "\nReading the table:\n"
      " * Baselines only batch requests of the SAME LoRA model, so their\n"
      "   throughput collapses when tenants are diverse (Distinct/Uniform/"
      "Skewed).\n"
      " * Punica's SGMV kernel batches ACROSS LoRA models; throughput is\n"
      "   nearly independent of the popularity distribution.\n"
      " * On Identical, vLLM (running backbone-only, no LoRA math at all)\n"
      "   is slightly ahead — the LoRA addon costs ~2 ms per token.\n");

  RunNumericSharedPrefixDemo(args.dtype, args.tp);
  return 0;
}
