// Cluster consolidation & autoscaling signals (paper §5.1, Fig. 13).
//
// Drives an 8-GPU simulated cluster through a rising-then-falling Poisson
// load and prints, per 2-minute window, the scheduler's view: working-set
// concentration, queue depth, and the scale-up/down advice a cloud
// controller would act on ("if no lightly loaded GPU exists, request more
// GPUs; GPUs with no load can be returned").
#include <cstdio>

#include "gpu/memory.h"
#include "gpu/specs.h"
#include "sched/cluster.h"
#include "sim/arrivals.h"
#include "util/table.h"
#include "workload/trace.h"

using namespace punica;

int main() {
  CostModel cm((A100Sxm80GB()));
  const double kHorizon = 1200.0;  // 20 simulated minutes
  const double kPeak = 6.0;        // req/s at the midpoint

  // Per-GPU memory plan (paper §3's layout: backbone + LoRA slab + KvCache).
  MemoryPlanRequest mem_req{.gpu = A100Sxm80GB(), .model = Llama7B()};
  MemoryPlan mem = PlanMemory(mem_req);
  std::printf("Per-GPU memory plan:\n%s\n",
              DescribePlan(mem_req, mem).c_str());

  ClusterConfig cfg;
  cfg.num_gpus = 8;
  cfg.model = Llama7B();
  cfg.runner.max_batch_size = 32;
  cfg.runner.kv_capacity_tokens = mem.kv_capacity_tokens;
  cfg.runner.lora_load_latency_s = cm.LoraLoadModelLatency(cfg.model, 16);
  // Cloud autoscaling (§5.1): start with 2 GPUs, acquire under load,
  // release idle machines.
  cfg.enable_autoscale = true;
  cfg.initial_gpus = 2;
  cfg.autoscale_interval_s = 30.0;

  Pcg32 rng(2468);
  auto arrivals = PoissonArrivals(
      [&](double t) { return RampRate(t, kHorizon, kPeak); }, kPeak,
      kHorizon, rng);
  auto trace = GenerateOpenLoopTrace(arrivals, /*num_models=*/32,
                                     /*zipf_alpha=*/1.5, /*seed=*/13);
  std::printf("%zu requests over %.0f min, peak %.1f req/s, Zipf-1.5 over "
              "32 LoRA models, 8 GPUs\n\n",
              trace.size(), kHorizon / 60.0, kPeak);

  ClusterDriver driver(cfg, &cm);
  driver.SubmitTrace(trace);

  Table t({"t (min)", "queue", "working sets (GPU 0..7)", "in service",
           "advice"});
  const double kWindow = 120.0;
  for (double t_end = kWindow; t_end <= kHorizon + kWindow;
       t_end += kWindow) {
    driver.Run(t_end);
    std::string sets;
    for (int g = 0; g < cfg.num_gpus; ++g) {
      if (driver.scheduler().IsGpuEnabled(g)) {
        sets += std::to_string(
                    driver.scheduler().backend(g)->working_set_size()) +
                " ";
      } else {
        sets += "- ";
      }
    }
    auto advice = driver.scheduler().Advise();
    std::string note;
    if (advice.need_more_gpus) {
      note = "scale UP (no lightly loaded GPU)";
    } else if (!advice.releasable_gpus.empty()) {
      note = "can release " +
             std::to_string(advice.releasable_gpus.size()) + " idle GPUs";
    } else {
      note = "steady";
    }
    t.AddRow({FormatDouble(t_end / 60.0, 0),
              std::to_string(driver.scheduler().queue_size()), sets,
              std::to_string(driver.scheduler().num_enabled_gpus()), note});
  }
  driver.Run();  // drain
  t.Print();

  const ClusterStats& stats = driver.stats();
  std::printf("\nfinished %lld requests, %lld tokens, %lld migrations, "
              "mean batch %.1f\n",
              static_cast<long long>(stats.finished_requests),
              static_cast<long long>(stats.total_new_tokens),
              static_cast<long long>(stats.migrations),
              stats.step_batch_size.mean());
  std::printf("autoscale: %lld GPU acquisitions, %lld releases\n",
              static_cast<long long>(stats.gpu_acquisitions),
              static_cast<long long>(stats.gpu_releases));
  std::printf("note how load concentrates on high-UUID GPUs: busy GPUs stay "
              "busy, idle GPUs\nare released back to the provider.\n");
  return 0;
}
