// Open-loop serving walkthrough: the same Poisson workload served twice
// through src/serving/ —
//
//   1. virtual time: ServingLoop::RunVirtual replays arrivals on the
//      discrete-event clock (deterministic; what bench_serving sweeps);
//   2. real threads: a TraceSubmitter fleet sleeps until each wall-clock
//      arrival (compressed 100x) and pushes into a bounded ArrivalQueue
//      that ServingLoop::RunThreaded drains — the backpressure path.
//
// Both runs print the same SLO scorecard: TTFT, queueing delay, e2e and
// goodput, with the low-priority tenant class shed first under overload.
#include <cstdio>

#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "runtime/runner.h"
#include "serving/load_generator.h"
#include "serving/serving_loop.h"
#include "util/table.h"

using namespace punica;

namespace {

void PrintScorecard(const char* mode, const ServingMetrics& m,
                    double duration_s) {
  double tok_s = duration_s > 0.0
                     ? static_cast<double>(m.total_new_tokens) / duration_s
                     : 0.0;
  std::printf(
      "%s:\n"
      "  offered %lld, finished %lld, shed %lld, goodput %.3f\n"
      "  TTFT p50/p95      %7.1f / %7.1f ms\n"
      "  queue wait mean   %7.1f ms\n"
      "  e2e p50/p95       %7.1f / %7.1f ms\n"
      "  ITL p95           %7.1f ms\n"
      "  throughput        %7.0f tok/s over %.2f s\n\n",
      mode, static_cast<long long>(m.offered),
      static_cast<long long>(m.finished), static_cast<long long>(m.shed),
      m.goodput(), m.ttft.p50() * 1e3, m.ttft.p95() * 1e3,
      m.queue_wait.mean() * 1e3, m.e2e.p50() * 1e3, m.e2e.p95() * 1e3,
      m.itl.p95() * 1e3, tok_s, duration_s);
}

struct Cluster {
  CostModel cm{A100Sxm80GB()};
  std::vector<std::unique_ptr<GpuRunner>> runners;
  std::vector<ExecutionBackend*> backends;

  explicit Cluster(int gpus) {
    RunnerConfig cfg;
    cfg.prefill_limit = 4;
    cfg.max_step_tokens = 768;
    cfg.kv_capacity_tokens = 400000;
    for (int g = 0; g < gpus; ++g) {
      runners.push_back(std::make_unique<GpuRunner>(g, cfg, Llama7B(), &cm));
      backends.push_back(runners.back().get());
    }
  }
};

}  // namespace

int main() {
  // Offered load just past the single-GPU knee (~3 rps for this mix), with
  // two priority classes: class 1 is protected, class 0 is shed first.
  OpenLoopSpec load;
  load.rate_rps = 5.0;
  load.num_requests = 200;
  load.priority_classes = 2;
  auto trace = GenerateOpenLoopLoad(load);
  std::printf("workload: %zu requests at %.1f rps, Zipf-1.5 over %d LoRA "
              "models, 2 priority classes\n\n",
              trace.size(), load.rate_rps, load.num_models);

  ServingLoopConfig cfg;
  cfg.slo = {.ttft_target_s = 1.0, .itl_target_s = 0.25};

  // --- Virtual time: deterministic discrete-event replay. ---
  {
    Cluster cluster(1);
    ServingLoop loop(cluster.backends, cfg);
    loop.RunVirtual(trace);
    PrintScorecard("virtual time (1 GPU, overloaded)", loop.metrics(),
                   loop.end_time());
  }

  // A second GPU moves the knee past the offered rate: goodput recovers.
  {
    Cluster cluster(2);
    ServingLoop loop(cluster.backends, cfg);
    loop.RunVirtual(trace);
    PrintScorecard("virtual time (2 GPUs, under capacity)", loop.metrics(),
                   loop.end_time());
  }

  // --- Real threads: submitter fleet -> bounded queue -> serving loop. ---
  // Wall-clock time is compressed 100x, so the ~40 simulated seconds of
  // arrivals replay in ~0.4 s; SLO stamps are wall-clock and the arrival
  // stamps are rescaled to match, so the scorecard stays self-consistent
  // (virtual service latencies do not rescale, so this mode demonstrates
  // the machinery, not comparable absolute numbers).
  {
    Cluster cluster(2);
    std::vector<SubmitSpec> specs;
    for (const auto& r : trace) specs.push_back(SpecFromTrace(r));
    ArrivalQueue queue(64);
    TraceSubmitter submitter(specs, /*time_scale=*/0.01);
    submitter.Start(&queue, /*num_threads=*/4);
    ServingLoop loop(cluster.backends, cfg);
    loop.RunThreaded(queue);
    submitter.Join();
    PrintScorecard("real threads (2 GPUs, 4 submitters, 100x compressed)",
                   loop.metrics(), loop.end_time());
  }
  return 0;
}
