#!/usr/bin/env python3
"""Bench-regression gate: diff fresh CI bench artifacts against committed
baselines and fail on throughput regressions.

Every CI run produces BENCH_kernels.json (Google Benchmark format, from
bench_cpu_kernels) and BENCH_prefix_cache.json (the fig11b shared-prefix
table from bench_fig11_textgen). This script compares each fresh artifact
against the baseline of the same name under bench/baselines/ and exits
non-zero when any throughput-like metric regressed by more than the
threshold (default 15%, the slack CI-runner variance needs). Improvements
are reported and never fail; to ratchet the trajectory forward, rerun with
--update and commit the refreshed baselines.

Usage:
    check_bench.py [--baseline-dir bench/baselines] [--threshold 0.15]
                   [--update] [--min PATTERN:VALUE ...]
                   FRESH.json [FRESH2.json ...]

The threshold can also come from the BENCH_REGRESSION_THRESHOLD env var
(the flag wins). Metrics compared:
  * Google Benchmark files: items_per_second (preferred) or
    bytes_per_second per benchmark name; falls back to 1/real_time.
    A benchmark present in the baseline but missing from the fresh run
    fails the gate — silently dropping a bench is how regressions hide.
  * kernels_quant files (Google format, filename contains
    "kernels_quant"): same per-benchmark metrics, plus derived
    q8_vs_f16 / q4_vs_f16 throughput ratios per (family, simd) pair —
    the keys the quant speedup floors (--min) gate against.
  * fig11b files: tok_s_on and saved_fraction per popularity row
    (zero-valued baseline metrics are skipped: Distinct saves nothing by
    construction).
  * serving_open_loop files (bench_serving --json): goodput and tok_s per
    offered-rate row, plus 1/ttft_p95_s and 1/queue_mean_s so every gated
    metric stays higher-is-better. Virtual-time output is deterministic,
    so these gate at the strict default threshold.
  * tp_scaling files (bench_fig12_70b_tp --json): tok_s, speedup and
    predicted_speedup per (mode, tp) row. tok_s is wall-clock; speedup is
    a same-run ratio (runner speed cancels but core count does not — it
    measures the machine's real parallelism), the quantity the CI speedup
    floors (--min) gate; predicted_speedup is deterministic cost-model
    output and gates at the strict threshold.
  * lora_tp files (bench_lora_tp --json): identical schema to tp_scaling
    for the LoRA-active Engine sweep — every stream decodes on a
    Megatron-sharded adapter, so its per_rank floor gates the sharded
    SGMV path specifically.
  * attention files (bench_attention --json): per-shape speedup of the
    page-run split-KV decode kernel over the pre-rewrite serial kernel (a
    same-run ratio, gated by the --min floor at b1/kv4096), plus
    wall-clock pos_per_s rows that CI excludes from the baseline compare.
"""

import argparse
import json
import os
import re
import shutil
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def google_benchmark_metrics(doc):
    """{benchmark name: (metric value, metric kind)} — higher is better.

    Runs made with --benchmark_repetitions yield several raw entries per
    run_name; the BEST repetition is compared. A shared CI runner can be
    transiently slow (noisy neighbours, throttling) but never transiently
    fast, so max-of-N measures the machine's capability — the quantity a
    code regression actually lowers — and is what lets a 15% gate hold on
    noisy runners. Median/mean aggregate rows are skipped in favour of the
    raw repetitions.
    """
    metrics = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if b.get("error_occurred"):
            # SkipWithError rows: the quant sweeps skip SIMD levels the
            # host cannot run; an absent level is not a regression.
            continue
        name = b.get("run_name", b["name"])
        if "items_per_second" in b:
            value, kind = b["items_per_second"], "items/s"
        elif "bytes_per_second" in b:
            value, kind = b["bytes_per_second"], "bytes/s"
        elif b.get("real_time", 0) > 0:
            value, kind = 1.0 / b["real_time"], "1/time"
        else:
            continue
        if name not in metrics or value > metrics[name][0]:
            metrics[name] = (value, kind)
    return metrics


def fig11b_metrics(doc):
    """{row key: (value, kind)} for the shared-prefix bench artifact."""
    metrics = {}
    for row in doc.get("rows", []):
        pop = row.get("popularity", "?")
        for field in ("tok_s_on", "saved_fraction"):
            if field in row:
                metrics[f"{pop}/{field}"] = (row[field], field)
    return metrics


def serving_metrics(doc):
    """{row key: (value, kind)} for the open-loop serving sweep.

    Latencies invert so the comparison stays uniformly higher-is-better;
    zero-valued latencies (an idle queue) are skipped rather than divided.
    """
    metrics = {}
    for row in doc.get("rows", []):
        key = f"rps{row.get('offered_rps', '?'):g}"
        for field in ("goodput", "tok_s"):
            if field in row:
                metrics[f"{key}/{field}"] = (row[field], field)
        for field in ("ttft_p95_s", "queue_mean_s"):
            if row.get(field, 0) > 0:
                metrics[f"{key}/1/{field}"] = (1.0 / row[field], "1/s")
    return metrics


def tp_scaling_metrics(doc):
    """{row key: (value, kind)} for the measured tensor-parallel sweep."""
    metrics = {}
    for row in doc.get("rows", []):
        key = f"{row.get('mode', 'default')}/tp{row.get('tp', '?')}"
        for field in ("tok_s", "speedup", "predicted_speedup"):
            if field in row:
                metrics[f"{key}/{field}"] = (row[field], field)
    return metrics


def lora_tp_metrics(doc):
    """{row key: (value, kind)} for the measured LoRA-under-TP sweep.

    Same row schema as tp_scaling by construction (bench_lora_tp measures
    the identical Engine decode loop with every stream on a sharded
    adapter): tok_s is wall-clock, speedup a same-run ratio the CI floors
    gate — the per_rank tp=4 floor catches sharded-SGMV execution
    collapsing to a serial schedule while the backbone still scales — and
    predicted_speedup is deterministic cost-model output (roofline with
    the LoRA segment shape threaded through StepShape) gated strictly.
    """
    return tp_scaling_metrics(doc)


def attention_metrics(doc):
    """{row key: (value, kind)} for the decode-attention rewrite bench.

    speedup is a same-run ratio of the pre-rewrite serial kernel to the
    page-run split-KV kernel (runner speed cancels) — the quantity the CI
    floor gates. pos_per_s (decode and split-sweep rows) is wall-clock;
    CI excludes it from the baseline compare.
    """
    metrics = {}
    for row in doc.get("rows", []):
        kind = row.get("kind")
        if kind == "decode":
            key = f"decode/b{row.get('batch', '?')}/kv{row.get('kv_len', '?')}"
            for field in ("speedup", "pos_per_s"):
                if field in row:
                    metrics[f"{key}/{field}"] = (row[field], field)
        elif kind == "split":
            if "pos_per_s" in row:
                metrics[f"split/s{row.get('split', '?')}/pos_per_s"] = (
                    row["pos_per_s"], "pos_per_s")
    return metrics


def kernels_quant_metrics(doc):
    """Google metrics plus derived quant-vs-f16 throughput ratios.

    The quant sweeps run every (dtype, simd) pair of one shape under one
    family name, e.g. BM_QuantGemvDecodeShape/dtype:1/simd:2. For each
    family and SIMD level with both a dtype:0 (f16) and a quantized row,
    a 'q8_vs_f16' / 'q4_vs_f16' ratio metric is derived — the quantity
    the acceptance floors (--min) gate: fused-dequant speedup must come
    from bytes saved, measured against f16 on the same host and path.
    """
    metrics = google_benchmark_metrics(doc)
    dtype_names = {1: "q8_vs_f16", 2: "q4_vs_f16"}
    pat = re.compile(r"^(?P<family>[^/]+)/dtype:(?P<dtype>\d+)(?P<rest>.*)$")
    groups = {}
    for key, (value, _kind) in metrics.items():
        m = pat.match(key)
        if m:
            groups.setdefault((m.group("family"), m.group("rest")),
                              {})[int(m.group("dtype"))] = value
    for (family, rest), by_dtype in groups.items():
        f16 = by_dtype.get(0)
        if not f16:
            continue
        for dtype, label in dtype_names.items():
            if dtype in by_dtype:
                metrics[f"{family}{rest}/{label}"] = (
                    by_dtype[dtype] / f16, "ratio")
    return metrics


def extract_metrics(doc, path=""):
    if "benchmarks" in doc:
        if "kernels_quant" in os.path.basename(path):
            return kernels_quant_metrics(doc)
        return google_benchmark_metrics(doc)
    if doc.get("bench") == "serving_open_loop":
        return serving_metrics(doc)
    if doc.get("bench") == "tp_scaling":
        return tp_scaling_metrics(doc)
    if doc.get("bench") == "lora_tp":
        return lora_tp_metrics(doc)
    if doc.get("bench") == "attention":
        return attention_metrics(doc)
    if "rows" in doc:
        return fig11b_metrics(doc)
    raise ValueError("unrecognized bench JSON format")


def compare(name, baseline, fresh, threshold, exclude):
    """Returns a list of failure strings; prints the per-metric report."""
    failures = []
    for key in sorted(baseline):
        if any(pat.search(key) for pat in exclude):
            continue
        base_val, kind = baseline[key]
        if key not in fresh:
            failures.append(f"{name}: '{key}' missing from fresh run")
            continue
        fresh_val, _ = fresh[key]
        if base_val <= 0:
            continue  # nothing to regress from (e.g. Distinct saves 0%)
        ratio = fresh_val / base_val
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: '{key}' {kind} regressed to {ratio:.2%} of "
                f"baseline ({base_val:.4g} -> {fresh_val:.4g})")
        elif ratio > 1.0 + threshold:
            status = "improved"
        print(f"  {status:>10}  {ratio:7.2%}  {key}")
    for key in sorted(set(fresh) - set(baseline)):
        print(f"  {'new':>10}  {'':>7}  {key} (no baseline yet)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="+",
                        help="fresh bench artifacts to check")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.15")),
        help="relative regression that fails the gate (default 0.15)")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh artifacts over the baselines "
                             "instead of checking (ratchet the trajectory)")
    parser.add_argument(
        "--exclude", action="append", default=[],
        help="regex of metric keys to skip (repeatable). CI excludes the "
             "multi-thread scaling sweeps: how fast threads:4 runs depends "
             "on the runner's free cores, not on the code under test")
    parser.add_argument(
        "--min", action="append", default=[], metavar="PATTERN:VALUE",
        help="absolute floor (repeatable): every fresh metric whose key "
             "matches the regex must be >= VALUE, and at least one such "
             "metric must exist. Gates ratios that must hold on any host, "
             "e.g. the quant speedup floors q8_vs_f16 >= 1.7")
    args = parser.parse_args()
    exclude = [re.compile(p) for p in args.exclude]
    floors = []
    for spec in args.min:
        pattern, sep, value = spec.rpartition(":")
        if not sep:
            parser.error(f"--min needs PATTERN:VALUE, got '{spec}'")
        floors.append((re.compile(pattern), float(value)))

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.fresh:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"updated {dest}")
        return 0

    all_failures = []
    union_fresh = {}
    for path in args.fresh:
        base_path = os.path.join(args.baseline_dir, os.path.basename(path))
        if not os.path.exists(base_path):
            all_failures.append(
                f"{path}: no committed baseline at {base_path} "
                f"(seed it with --update)")
            continue
        print(f"{path} vs {base_path} (threshold {args.threshold:.0%}):")
        try:
            baseline = extract_metrics(load(base_path), base_path)
            fresh = extract_metrics(load(path), path)
        except (ValueError, KeyError, json.JSONDecodeError) as e:
            all_failures.append(f"{path}: unreadable bench JSON: {e}")
            continue
        union_fresh.update(fresh)
        all_failures.extend(compare(os.path.basename(path), baseline,
                                    fresh, args.threshold, exclude))

    for pattern, floor in floors:
        matched = {k: v for k, (v, _) in union_fresh.items()
                   if pattern.search(k)}
        if not matched:
            all_failures.append(
                f"--min {pattern.pattern}: no fresh metric matches")
            continue
        for key, value in sorted(matched.items()):
            status = "ok" if value >= floor else "BELOW FLOOR"
            print(f"  {status:>11}  {value:8.3f} >= {floor:g}  {key}")
            if value < floor:
                all_failures.append(
                    f"--min: '{key}' = {value:.4g} below floor {floor:g}")

    if all_failures:
        print("\nbench-regression gate FAILED:", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench-regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
